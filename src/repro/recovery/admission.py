"""Bid admission control: validate or quarantine before clearing.

One malformed bid — a NaN breakpoint, an inverted ``(q_min, q_max)``
pair mutated after construction, a demand far beyond the rack's
physical headroom — would otherwise poison the columnar
:class:`~repro.core.frame.BidFrame` the whole slot clears through.  The
admission front door screens every solicited bundle *before* frame
construction: a bundle containing any malformed rack bid is quarantined
whole (never partially admitted) and the tenant sits the slot out,
exactly like a lost bid (the paper's §III-C default-to-no-spot
semantics).  Quarantines carry a machine-readable reason surfaced in
the trace, the run metrics, and the tenant's invoice.

Honest bids are untouched: every built-in bidding strategy clips its
demand to the rack's spot headroom, and the Eq. 2 rack clip in clearing
remains in force for anything the tolerance lets through.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Sequence

from repro.core.bids import RackBid, TenantBid
from repro.core.demand import LinearBid, StepBid
from repro.errors import BidValidationError

__all__ = [
    "QUARANTINE_REASONS",
    "QuarantinedBid",
    "dedupe_bundles",
    "inspect_rack_bid",
    "screen_bids",
    "screen_rack_bids",
    "validate_rack_bid",
]


def dedupe_bundles(
    tenant_bids: Iterable[TenantBid],
) -> tuple[list[TenantBid], tuple[str, ...]]:
    """Absorb duplicate bundle deliveries: first copy per tenant wins.

    At-least-once transports (client retries after a lost ack, the
    duplicate-delivery fault channel) can hand the market the same
    tenant's bundle twice in one slot.  Ingestion is idempotent: the
    first delivery is kept, later copies are dropped, and the absorbed
    tenant ids are reported so the slot can account for them.  Running
    this *before* :func:`screen_bids` /
    :func:`~repro.core.bids.flatten_bids` keeps a redelivery from ever
    tripping the duplicate-rack integrity check or double-billing.
    """
    seen: set[str] = set()
    unique: list[TenantBid] = []
    absorbed: list[str] = []
    for bundle in tenant_bids:
        if bundle.tenant_id in seen:
            absorbed.append(bundle.tenant_id)
            continue
        seen.add(bundle.tenant_id)
        unique.append(bundle)
    return unique, tuple(absorbed)

#: Machine-readable quarantine reasons, in check order.
QUARANTINE_REASONS = (
    "non_finite",
    "inverted_prices",
    "inverted_quantities",
    "negative_value",
    "exceeds_rack_cap",
)

#: Relative slack on the rack-capacity check: honest strategies clip
#: demand to exactly the rack headroom, so only demand meaningfully
#: *above* it is malformed.
_CAP_RTOL = 1e-9


@dataclasses.dataclass(frozen=True)
class QuarantinedBid:
    """One rejected rack bid, with its reason.

    Attributes:
        tenant_id: Owner of the rejected bundle.
        rack_id: Rack whose bid failed validation (the whole bundle is
            quarantined with it).
        reason: One of :data:`QUARANTINE_REASONS`.
        detail: Human-readable description of the violation.
    """

    tenant_id: str
    rack_id: str
    reason: str
    detail: str


def _linear_params(bid: RackBid) -> tuple[float, float, float, float] | None:
    """The four linear parameters, or ``None`` for sampled demand kinds."""
    fn = bid.demand
    if type(fn) is LinearBid:
        return (fn.d_max_w, fn.q_min, fn.d_min_w, fn.q_max)
    if type(fn) is StepBid:
        return (fn.demand_w, fn.price_cap, fn.demand_w, fn.price_cap)
    return None


def inspect_rack_bid(bid: RackBid) -> tuple[str, str] | None:
    """Check one rack bid; return ``(reason, detail)`` or ``None`` if valid.

    The checks deliberately re-validate invariants the demand
    constructors also enforce: demand objects are plain mutable Python
    objects, so a misbehaving tenant (or a bug) can corrupt a bid
    *after* construction — and ``NaN`` passes every ``<`` comparison in
    the constructors anyway.
    """
    params = _linear_params(bid)
    if params is not None:
        d_max, q_min, d_min, q_max = params
        max_demand = d_max
    else:
        # Sampled demand kinds (FullBid, custom curves) expose only
        # their envelope; check what the clearing scan consumes.
        d_max = d_min = None
        try:
            max_demand = float(bid.demand.max_demand_w)
            q_max = float(bid.demand.max_price)
        except (TypeError, ValueError, ArithmeticError) as exc:
            return ("non_finite", f"demand envelope unreadable: {exc}")
        q_min = 0.0
    values = [
        v
        for v in (d_max, q_min, d_min, q_max, max_demand, bid.rack_cap_w)
        if v is not None
    ]
    if not all(math.isfinite(v) for v in values):
        return ("non_finite", f"non-finite bid parameter in {values}")
    if q_max < q_min:
        return (
            "inverted_prices",
            f"q_max ({q_max}) below q_min ({q_min})",
        )
    if d_max is not None and d_min is not None and d_min > d_max:
        return (
            "inverted_quantities",
            f"D_min ({d_min}) above D_max ({d_max})",
        )
    if min(values) < 0:
        return ("negative_value", f"negative bid parameter in {values}")
    cap = bid.rack_cap_w
    if max_demand > cap * (1.0 + _CAP_RTOL) + 1e-9:
        return (
            "exceeds_rack_cap",
            f"demand {max_demand} W exceeds rack headroom {cap} W",
        )
    return None


def validate_rack_bid(bid: RackBid) -> None:
    """Raise :class:`BidValidationError` if the bid is malformed.

    The raising variant for callers validating bids directly; the
    market itself never raises — it quarantines via :func:`screen_bids`.
    """
    verdict = inspect_rack_bid(bid)
    if verdict is not None:
        reason, detail = verdict
        raise BidValidationError(
            f"rack {bid.rack_id} (tenant {bid.tenant_id}): {detail}",
            reason=reason,
        )


def screen_bids(
    tenant_bids: Iterable[TenantBid],
) -> tuple[list[TenantBid], tuple[QuarantinedBid, ...]]:
    """Partition solicited bundles into admitted and quarantined.

    A bundle is admitted only if *every* rack bid in it is valid —
    partial admission would grant a tenant capacity on exactly the
    racks whose bids happened to parse, an outcome no tenant asked for.
    Quarantined bundles report one :class:`QuarantinedBid` per
    offending rack bid.

    Returns:
        ``(admitted, quarantined)``; admitted bundles preserve
        submission order.
    """
    admitted: list[TenantBid] = []
    quarantined: list[QuarantinedBid] = []
    for bundle in tenant_bids:
        offenders = [
            (bid, verdict)
            for bid in bundle.rack_bids
            if (verdict := inspect_rack_bid(bid)) is not None
        ]
        if not offenders:
            admitted.append(bundle)
            continue
        for bid, (reason, detail) in offenders:
            quarantined.append(
                QuarantinedBid(
                    tenant_id=bundle.tenant_id,
                    rack_id=bid.rack_id,
                    reason=reason,
                    detail=detail,
                )
            )
    return admitted, tuple(quarantined)


def screen_rack_bids(
    bids: Sequence[RackBid],
) -> tuple[list[RackBid], tuple[QuarantinedBid, ...]]:
    """Screen already-flattened rack bids (no bundle atomicity).

    Used by callers that never see bundles (e.g. re-screening oracle
    rebids); each rack bid is judged on its own.
    """
    admitted: list[RackBid] = []
    quarantined: list[QuarantinedBid] = []
    for bid in bids:
        verdict = inspect_rack_bid(bid)
        if verdict is None:
            admitted.append(bid)
        else:
            reason, detail = verdict
            quarantined.append(
                QuarantinedBid(
                    tenant_id=bid.tenant_id,
                    rack_id=bid.rack_id,
                    reason=reason,
                    detail=detail,
                )
            )
    return admitted, tuple(quarantined)
