"""Wall-clock deadline guard on the clear phase, with graceful fallback.

The paper's market must clear well inside a slot (<1 s at 15,000 racks,
Fig. 18).  A clearing pass that blows its budget — a pathological bid
set, a cold interpreter, an overloaded host — must not stall the slot
loop: the operator falls back down a ladder that is always safe:

1. **reuse_price** — re-grant at the *previous* slot's clearing price:
   each rack gets its (rack-clipped) demand at that price, rescaled
   within every PDU to the forecast headroom, then rescaled to the UPS
   headroom and any extra constraint caps.  Every step only shrinks
   grants, so the result satisfies Eqs. 2-4 by construction.
2. **no_spot** — the paper's §III-C default: an empty allocation.
   Used when there is no previous price (the first market slot).

The guard measures the allocator call *post hoc* — Python offers no
safe preemption — so an overrunning pass still completes once, but its
outcome is discarded in favour of the deterministic fallback, the hit
is counted (``clearing_deadline_hits_total{fallback=...}``), and a
``deadline.exceeded`` trace event is emitted.  The event deliberately
excludes the measured elapsed time: traces must stay byte-deterministic
across same-seed runs.

Disabled by default (``Scenario.clearing_deadline_s = None``): wall
time is inherently nondeterministic, so runs that pin byte-identical
traces leave the guard off.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.allocation import AllocationResult
from repro.errors import ConfigurationError

__all__ = [
    "ClearingDeadlineGuard",
    "ManualClock",
    "build_fallback_record",
    "default_budget_s",
]

#: Default clearing budget as a fraction of the slot length: clearing
#: that eats more than a tenth of the slot leaves too little margin for
#: grant distribution and enforcement (Fig. 6 timing).
DEFAULT_BUDGET_FRACTION = 0.1


def default_budget_s(slot_seconds: float) -> float:
    """The default clearing budget derived from the slot length."""
    return float(slot_seconds) * DEFAULT_BUDGET_FRACTION


class ManualClock:
    """Deterministic test clock: each reading advances by ``step_s``.

    The slow-clearing test hook: install it on a guard with a budget
    below ``step_s`` and every clear phase measures as over budget —
    no sleeping, no flaky thresholds.
    """

    def __init__(self, step_s: float = 0.0) -> None:
        self.now = 0.0
        self.step_s = float(step_s)

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step_s
        return reading


class ClearingDeadlineGuard:
    """Wall-clock budget for the clear phase.

    Args:
        budget_s: Budget in seconds; the clear phase exceeding it
            triggers the fallback ladder.
        clock: Monotonic time source in seconds (injectable for
            deterministic tests; defaults to
            :func:`time.perf_counter`).  Must be picklable — the guard
            is part of the engine's checkpointed state.
    """

    def __init__(self, budget_s: float, clock=None) -> None:
        if budget_s <= 0:
            raise ConfigurationError(
                f"clearing deadline budget must be positive, got {budget_s}"
            )
        self.budget_s = float(budget_s)
        self.clock = clock if clock is not None else time.perf_counter
        #: Deadline hits so far, by fallback kind.
        self.hits: dict[str, int] = {}

    def start(self) -> float:
        """A clock reading taken just before the allocator runs."""
        return self.clock()

    def elapsed(self, started: float) -> float:
        """Seconds since ``started``."""
        return self.clock() - started

    def over_budget(self, elapsed_s: float) -> bool:
        """Whether a measured clear phase blew the budget."""
        return elapsed_s > self.budget_s

    def record_hit(self, fallback: str) -> None:
        """Count one deadline hit by fallback kind."""
        self.hits[fallback] = self.hits.get(fallback, 0) + 1


def build_fallback_record(
    record,
    last_price: float | None,
    forecast,
    slot_seconds: float,
    extra_constraints=(),
):
    """The fallback outcome replacing an over-deadline clearing result.

    Args:
        record: The (discarded) outcome of the overrunning clear; its
            frame carries the slot's admitted bids.
        last_price: Previous slot's clearing price, or ``None`` on the
            first market slot.
        forecast: This slot's
            :class:`~repro.prediction.spot.SpotCapacityForecast`.
        slot_seconds: Slot length (billing).
        extra_constraints: This slot's extra capacity constraints.

    Returns:
        ``(fallback_record, kind)`` with ``kind`` one of
        ``"reuse_price"`` / ``"no_spot"``.
    """
    # Imported here: repro.core.market itself imports the admission
    # front door from this package, so a module-level import would be
    # circular.
    from repro.core.market import SlotMarketRecord

    frame = record.frame
    if last_price is None or frame is None or len(frame) == 0:
        empty = SlotMarketRecord(
            result=AllocationResult.empty(),
            bids=record.bids,
            payments={},
            frame=frame,
            quarantined=record.quarantined,
        )
        return empty, "no_spot"

    price = float(last_price)
    grants = frame.demand_at(price)
    # Scale down within each PDU to the forecast headroom (Eq. 3) ...
    pdu_totals = frame.pdu_demand(grants[:, None])[:, 0]
    pdu_caps = np.fromiter(
        (forecast.pdu_spot_w.get(p, 0.0) for p in frame.pdu_ids),
        dtype=float,
        count=len(frame.pdu_ids),
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        pdu_scale = np.where(
            pdu_totals > pdu_caps,
            np.where(pdu_totals > 0, pdu_caps / np.maximum(pdu_totals, 1e-300), 0.0),
            1.0,
        )
    grants = grants * pdu_scale[frame.pdu_code]
    # ... then within each extra constraint group (phase/heat caps) ...
    for constraint in extra_constraints:
        rows = frame.rows_for(constraint.rack_ids)
        if rows.size == 0:
            continue
        group_total = float(grants[rows].sum())
        if group_total > constraint.cap_w and group_total > 0:
            grants[rows] *= max(constraint.cap_w, 0.0) / group_total
    # ... then globally to the UPS headroom (Eq. 4).  Every step only
    # shrinks grants, so no earlier bound is re-violated.
    total = float(grants.sum())
    ups_cap = float(forecast.ups_spot_w)
    if total > ups_cap:
        grants = grants * (max(ups_cap, 0.0) / total) if total > 0 else grants
    grants = np.maximum(grants, 0.0)

    grants_map = {rid: float(g) for rid, g in zip(frame.rack_ids, grants)}
    revenue_rate, payments = frame.settle(grants, {}, price, slot_seconds)
    result = AllocationResult(
        price=price,
        grants_w=grants_map,
        revenue_rate=revenue_rate,
        candidate_prices=0,
        feasible_prices=0,
        pdu_prices={},
    )
    fallback = SlotMarketRecord(
        result=result,
        bids=record.bids,
        payments=payments,
        frame=frame,
        quarantined=record.quarantined,
    )
    return fallback, "reuse_price"
