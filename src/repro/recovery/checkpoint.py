"""Versioned, atomic checkpoints of the simulation engine's slot loop.

A checkpoint captures *everything* the next slot depends on — RNG
streams, tenant/workload/portfolio state, enforcement warning memory,
degradation-controller and fault-injector state, telemetry counters and
the trace cursor — by pickling the whole
:class:`~repro.sim.engine.SimulationEngine` inside a small validated
envelope.  Restoring it and replaying the remaining slots must be
indistinguishable from never having crashed: the recovery invariant is
byte-identical traces and an equal :class:`SimulationResult`.

Format & compatibility policy
-----------------------------

The envelope is ``{"magic", "format", "slot", "horizon", "engine"}``.
``format`` (:data:`CHECKPOINT_FORMAT`) is bumped on any change to the
engine's pickled state layout; there is **no** cross-version migration —
a checkpoint is scoped to the code that wrote it (it exists to survive a
crash, not a deploy), so a version mismatch raises
:class:`~repro.errors.RecoveryError` and the run must restart from
slot 0.  Writes are atomic (temp file + :func:`os.replace`) so a crash
*during* checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
import re
import warnings
from pathlib import Path

from repro.errors import RecoveryError

__all__ = [
    "CHECKPOINT_FORMAT",
    "checkpoint_path",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]

#: Checkpoint format version; bumped on any engine state-layout change.
#: 2: the engine carries its mid-loop run state (``_run``) so daemon-mode
#: resumes continue inside the slot loop.
CHECKPOINT_FORMAT = 2

_MAGIC = "spotdc-checkpoint"
_NAME_RE = re.compile(r"^checkpoint_(\d{6,})\.pkl$")


def checkpoint_path(directory: str | Path, slot: int) -> Path:
    """The canonical checkpoint filename for a slot."""
    return Path(directory) / f"checkpoint_{slot:06d}.pkl"


def save_checkpoint(
    engine, directory: str | Path, slot: int, horizon: int
) -> Path:
    """Atomically write the engine's state after completing ``slot``.

    Args:
        engine: The :class:`~repro.sim.engine.SimulationEngine`, with
            every slot up to and including ``slot`` fully processed.
        directory: Checkpoint directory (created if missing).
        slot: Last completed slot; a resume restarts at ``slot + 1``.
        horizon: Total slots of the run, pinned so a resume with a
            different horizon fails loudly instead of silently
            producing a differently-shaped result.

    Returns:
        The path written.

    Raises:
        RecoveryError: If the engine state cannot be pickled (e.g. a
            ``constraint_provider`` lambda closed over live objects).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    envelope = {
        "magic": _MAGIC,
        "format": CHECKPOINT_FORMAT,
        "slot": int(slot),
        "horizon": int(horizon),
        "engine": engine,
    }
    path = checkpoint_path(directory, slot)
    tmp = path.with_suffix(".pkl.tmp")
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        tmp.unlink(missing_ok=True)
        raise RecoveryError(
            f"engine state is not checkpointable: {exc} (a common cause is "
            "a constraint_provider lambda; use a picklable callable)"
        ) from exc
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Load and validate a checkpoint envelope.

    Returns:
        The envelope dict: ``slot`` (last completed slot), ``horizon``
        (the run length it was written under), and ``engine`` (the
        restored :class:`~repro.sim.engine.SimulationEngine`).

    Raises:
        RecoveryError: If the file is missing, unreadable, not a SpotDC
            checkpoint, or from an incompatible format version.
    """
    path = Path(path)
    if not path.exists():
        raise RecoveryError(f"checkpoint not found: {path}")
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except Exception as exc:
        # A truncated or bit-flipped pickle stream can raise nearly
        # anything (EOFError, UnpicklingError, ImportError, KeyError,
        # UnicodeDecodeError, ...); every flavour of corruption must
        # surface as a RecoveryError naming the file, never as a raw
        # pickle traceback.
        raise RecoveryError(f"corrupt checkpoint {path}: {exc!r}") from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
        raise RecoveryError(f"{path} is not a SpotDC checkpoint")
    version = envelope.get("format")
    if version != CHECKPOINT_FORMAT:
        raise RecoveryError(
            f"checkpoint {path} has format {version}, this build reads "
            f"{CHECKPOINT_FORMAT}; checkpoints do not survive state-layout "
            "changes — restart the run from slot 0"
        )
    missing = [k for k in ("slot", "horizon", "engine") if k not in envelope]
    if missing:
        raise RecoveryError(
            f"corrupt checkpoint {path}: envelope is missing "
            f"{', '.join(missing)}"
        )
    return envelope


def latest_checkpoint(directory: str | Path) -> Path | None:
    """The highest-slot *valid* checkpoint in a directory, or ``None``.

    Only files matching the canonical ``checkpoint_<slot>.pkl`` name are
    considered, so stray temp files from an interrupted write are never
    picked up.  Candidates are validated newest-first (a full
    :func:`load_checkpoint`): a corrupt or truncated file — e.g. one
    damaged by a disk fault after the atomic write — is skipped with a
    :class:`UserWarning` naming it, and the next older checkpoint is
    used instead.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: list[tuple[int, Path]] = []
    for entry in directory.iterdir():
        match = _NAME_RE.match(entry.name)
        if match is None:
            continue
        candidates.append((int(match.group(1)), entry))
    for _, path in sorted(candidates, reverse=True):
        try:
            load_checkpoint(path)
        except RecoveryError as exc:
            warnings.warn(
                f"skipping unusable checkpoint {path}: {exc}",
                stacklevel=2,
            )
            continue
        return path
    return None
