"""Operator survivability: checkpoint/restore, deadlines, admission.

The paper's operator must clear the market every 1-5 minute slot no
matter what: SpotDC "resumes to the default case of no spot capacity"
on failures (§III-C) and clearing must finish well inside the slot
(Fig. 18).  :mod:`repro.resilience` made the *inputs* faulty; this
package hardens the operator *process* itself, with three legs:

* :mod:`repro.recovery.checkpoint` — versioned, atomic per-slot engine
  checkpoints and their restore path.  The invariant (pinned by
  ``tests/test_recovery.py`` and the chaos sweep) is that a
  crashed-then-resumed run is **byte-identical** to the uninterrupted
  same-seed run: traces, metrics, and the ``SimulationResult``.
* :mod:`repro.recovery.deadline` — a wall-clock budget on the clear
  phase with a graceful fallback ladder: reuse the previous slot's
  clearing price (capacity-rescaled), else degrade to the no-spot
  baseline.
* :mod:`repro.recovery.admission` — the bid-validation front door:
  malformed bids (non-finite values, inverted breakpoints, demand
  beyond the rack's physical headroom) are quarantined with a reason
  and treated exactly like lost bids, never partially admitted.
"""

from repro.recovery.admission import (
    QUARANTINE_REASONS,
    QuarantinedBid,
    dedupe_bundles,
    inspect_rack_bid,
    screen_bids,
    screen_rack_bids,
    validate_rack_bid,
)
from repro.recovery.checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.recovery.deadline import (
    ClearingDeadlineGuard,
    ManualClock,
    build_fallback_record,
    default_budget_s,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "ClearingDeadlineGuard",
    "ManualClock",
    "QUARANTINE_REASONS",
    "QuarantinedBid",
    "build_fallback_record",
    "checkpoint_path",
    "dedupe_bundles",
    "default_budget_s",
    "inspect_rack_bid",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "screen_bids",
    "screen_rack_bids",
    "validate_rack_bid",
]
