"""Rack model with an intelligent, runtime-adjustable power budget.

A rack in a multi-tenant data center is owned by exactly one tenant and
fed by a rack-level PDU (power strip).  Two capacities matter:

* the **guaranteed capacity** the tenant subscribed to (enforced budget
  during normal operation), and
* the **physical capacity** of the rack PDU, which is over-provisioned
  beyond the subscription (cheap at US¢20-50/W) so that the operator can
  unlock *spot capacity* headroom at runtime — the paper's
  ``P_r^R = physical - guaranteed`` (Eq. 2).

The operator resets the enforced budget each slot through the rack PDU
(the paper cites APC AP8632 switched PDUs that accept 20+ budget updates
per second), which is modelled by :meth:`Rack.set_spot_budget`.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CapacityError, TopologyError

__all__ = ["Rack"]


@dataclasses.dataclass
class Rack:
    """One tenant-owned rack behind a switchable rack PDU.

    Attributes:
        rack_id: Unique identifier within the facility.
        tenant_id: Owning tenant (racks are never shared between tenants).
        pdu_id: Cluster PDU feeding this rack.
        guaranteed_w: Subscribed (guaranteed) capacity in watts.
        physical_w: Physical rack-PDU capacity in watts; must be at least
            the guaranteed capacity.  The difference is the maximum spot
            capacity ``P_r^R`` this rack can ever receive.
    """

    rack_id: str
    tenant_id: str
    pdu_id: str
    guaranteed_w: float
    physical_w: float
    _spot_budget_w: float = dataclasses.field(default=0.0, init=False, repr=False)
    _power_w: float = dataclasses.field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.rack_id:
            raise TopologyError("rack_id must be non-empty")
        if self.guaranteed_w < 0:
            raise TopologyError(
                f"rack {self.rack_id}: guaranteed capacity must be >= 0, "
                f"got {self.guaranteed_w}"
            )
        if self.physical_w < self.guaranteed_w:
            raise TopologyError(
                f"rack {self.rack_id}: physical capacity {self.physical_w} W "
                f"is below guaranteed capacity {self.guaranteed_w} W"
            )

    @property
    def max_spot_w(self) -> float:
        """Maximum spot capacity this rack can receive (``P_r^R``, Eq. 2)."""
        return self.physical_w - self.guaranteed_w

    @property
    def spot_budget_w(self) -> float:
        """Spot capacity currently granted for the active slot."""
        return self._spot_budget_w

    @property
    def budget_w(self) -> float:
        """Total enforced power budget: guaranteed + granted spot."""
        return self.guaranteed_w + self._spot_budget_w

    @property
    def power_w(self) -> float:
        """Most recent metered power draw (set by the monitor/engine)."""
        return self._power_w

    def set_spot_budget(self, watts: float) -> None:
        """Reset the rack PDU's spot budget for the next slot.

        Args:
            watts: Spot capacity granted; must lie in ``[0, max_spot_w]``.

        Raises:
            CapacityError: If the grant exceeds the rack's physical
                headroom — the market must never issue such a grant.
        """
        if watts < 0:
            raise CapacityError(
                f"rack {self.rack_id}: negative spot budget {watts} W"
            )
        # Tolerate float round-off from the clearing arithmetic.
        if watts > self.max_spot_w + 1e-9:
            raise CapacityError(
                f"rack {self.rack_id}: spot budget {watts:.3f} W exceeds "
                f"physical headroom {self.max_spot_w:.3f} W"
            )
        self._spot_budget_w = min(watts, self.max_spot_w)

    def clear_spot_budget(self) -> None:
        """Revoke spot capacity (default 'no spot capacity' state)."""
        self._spot_budget_w = 0.0

    def record_power(self, watts: float) -> None:
        """Record a metered power sample for this rack.

        Power monitoring is routine in colocation facilities (billing and
        reliability); the engine calls this every slot.  Draw above the
        enforced budget is *recorded*, not raised — budget violations are
        detected and logged by the emergency subsystem.
        """
        if watts < 0:
            raise CapacityError(f"rack {self.rack_id}: negative power {watts} W")
        self._power_w = watts

    def over_budget_w(self) -> float:
        """Watts by which current draw exceeds the enforced budget (>= 0)."""
        return max(0.0, self._power_w - self.budget_w)
