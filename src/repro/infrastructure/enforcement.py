"""Budget enforcement: warnings and involuntary power cuts.

Paper §III-C, "Handling exceptions": *"If certain tenants exceed their
own assigned power capacity (including spot capacity if applicable),
they may be warned and/or face involuntary power cut."*

:class:`EnforcementPolicy` implements the warn-then-cut escalation:

* a rack drawing above its enforced budget (beyond a tolerance) earns a
  **warning**;
* accumulating ``warnings_before_cut`` warnings within the rolling
  memory triggers a **power cut**: the rack is barred from the spot
  market for ``cut_slots`` slots (it reverts to its guaranteed budget —
  the safe default, as with communication losses).

The policy never reduces a rack below its guaranteed capacity: that is
contractual; enforcement only withdraws the *privilege* of spot
capacity.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.infrastructure.topology import PowerTopology

__all__ = ["EnforcementAction", "EnforcementPolicy"]


@dataclasses.dataclass(frozen=True)
class EnforcementAction:
    """One enforcement event.

    Attributes:
        slot: Slot index the event was issued in.
        rack_id: The offending rack.
        kind: ``"warning"`` or ``"power_cut"``.
        overdraw_w: Watts above the enforced budget observed.
    """

    slot: int
    rack_id: str
    kind: str
    overdraw_w: float


class EnforcementPolicy:
    """Warn-then-cut escalation for budget overdraws.

    Args:
        tolerance: Relative slack above the budget before a draw counts
            as an overdraw (metering noise / breaker tolerance).
        warnings_before_cut: Overdraws tolerated before a cut.
        cut_slots: Length of the spot-market bar, in slots.
    """

    def __init__(
        self,
        tolerance: float = 0.01,
        warnings_before_cut: int = 3,
        cut_slots: int = 30,
    ) -> None:
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        if warnings_before_cut < 1:
            raise ConfigurationError("warnings_before_cut must be >= 1")
        if cut_slots < 1:
            raise ConfigurationError("cut_slots must be >= 1")
        self.tolerance = tolerance
        self.warnings_before_cut = warnings_before_cut
        self.cut_slots = cut_slots
        self._warnings: dict[str, int] = {}
        self._barred_until: dict[str, int] = {}
        self._actions: list[EnforcementAction] = []

    @property
    def actions(self) -> tuple[EnforcementAction, ...]:
        """All enforcement events, in issue order."""
        return tuple(self._actions)

    def review(self, topology: PowerTopology, slot: int) -> list[EnforcementAction]:
        """Inspect current draws and issue warnings/cuts.

        Call once per slot after telemetry is recorded.
        """
        issued: list[EnforcementAction] = []
        for rack in topology.racks.values():
            budget = rack.budget_w
            if rack.power_w <= budget * (1 + self.tolerance):
                continue
            overdraw = rack.power_w - budget
            count = self._warnings.get(rack.rack_id, 0) + 1
            self._warnings[rack.rack_id] = count
            if count >= self.warnings_before_cut:
                self._warnings[rack.rack_id] = 0
                self._barred_until[rack.rack_id] = slot + 1 + self.cut_slots
                issued.append(
                    EnforcementAction(slot, rack.rack_id, "power_cut", overdraw)
                )
            else:
                issued.append(
                    EnforcementAction(slot, rack.rack_id, "warning", overdraw)
                )
        self._actions.extend(issued)
        return issued

    def is_barred(self, rack_id: str, slot: int) -> bool:
        """Whether the rack is barred from spot capacity at a slot."""
        return slot < self._barred_until.get(rack_id, 0)

    def barred_racks(self, slot: int) -> frozenset[str]:
        """All racks barred at a slot."""
        return frozenset(
            rack_id
            for rack_id, until in self._barred_until.items()
            if slot < until
        )

    def warning_count(self, rack_id: str) -> int:
        """Outstanding warnings for a rack (reset by a cut)."""
        return self._warnings.get(rack_id, 0)
