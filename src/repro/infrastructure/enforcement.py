"""Budget enforcement: warnings and involuntary power cuts.

Paper §III-C, "Handling exceptions": *"If certain tenants exceed their
own assigned power capacity (including spot capacity if applicable),
they may be warned and/or face involuntary power cut."*

:class:`EnforcementPolicy` implements the warn-then-cut escalation:

* a rack drawing above its enforced budget (beyond a tolerance) earns a
  **warning**;
* accumulating ``warnings_before_cut`` warnings within the rolling
  ``warning_memory_slots`` window triggers a **power cut**: the rack is
  barred from the spot market for ``cut_slots`` slots (it reverts to
  its guaranteed budget — the safe default, as with communication
  losses).

Warnings *expire*: only overdraws within the last
``warning_memory_slots`` slots count toward a cut, so a tenant with two
isolated excursions a week apart is not one slip away from a bar
forever.  (The original implementation accumulated warnings without any
expiry — a long-lived tenant's stale warnings never aged out; the
regression tests pin both the old bug and the fix.)

The policy never reduces a rack below its guaranteed capacity: that is
contractual; enforcement only withdraws the *privilege* of spot
capacity.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.infrastructure.topology import PowerTopology

__all__ = ["EnforcementAction", "EnforcementPolicy"]


@dataclasses.dataclass(frozen=True)
class EnforcementAction:
    """One enforcement event.

    Attributes:
        slot: Slot index the event was issued in.
        rack_id: The offending rack.
        kind: ``"warning"`` or ``"power_cut"``.
        overdraw_w: Watts above the enforced budget observed.
    """

    slot: int
    rack_id: str
    kind: str
    overdraw_w: float


class EnforcementPolicy:
    """Warn-then-cut escalation for budget overdraws.

    Args:
        tolerance: Relative slack above the budget before a draw counts
            as an overdraw (metering noise / breaker tolerance).
        warnings_before_cut: Overdraws within the warning memory
            tolerated before a cut.
        cut_slots: Length of the spot-market bar, in slots.
        warning_memory_slots: Rolling window, in slots, within which
            warnings count toward a cut; older warnings expire.  Pass
            ``None`` for the legacy forever-accumulating behaviour.
    """

    def __init__(
        self,
        tolerance: float = 0.01,
        warnings_before_cut: int = 3,
        cut_slots: int = 30,
        warning_memory_slots: int | None = 100,
    ) -> None:
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        if warnings_before_cut < 1:
            raise ConfigurationError("warnings_before_cut must be >= 1")
        if cut_slots < 1:
            raise ConfigurationError("cut_slots must be >= 1")
        if warning_memory_slots is not None and warning_memory_slots < 1:
            raise ConfigurationError(
                "warning_memory_slots must be >= 1, or None for no expiry"
            )
        self.tolerance = tolerance
        self.warnings_before_cut = warnings_before_cut
        self.cut_slots = cut_slots
        self.warning_memory_slots = warning_memory_slots
        self._warning_slots: dict[str, list[int]] = {}
        self._barred_until: dict[str, int] = {}
        self._actions: list[EnforcementAction] = []

    @property
    def actions(self) -> tuple[EnforcementAction, ...]:
        """All enforcement events, in issue order."""
        return tuple(self._actions)

    def _live_warnings(self, rack_id: str, slot: int) -> list[int]:
        """The rack's unexpired warning slots as of ``slot`` (pruned)."""
        slots = self._warning_slots.get(rack_id, [])
        if self.warning_memory_slots is not None:
            cutoff = slot - self.warning_memory_slots
            slots = [s for s in slots if s > cutoff]
            if rack_id in self._warning_slots:
                self._warning_slots[rack_id] = slots
        return slots

    def review(self, topology: PowerTopology, slot: int) -> list[EnforcementAction]:
        """Inspect current draws and issue warnings/cuts.

        Call once per slot after telemetry is recorded.
        """
        issued: list[EnforcementAction] = []
        for rack in topology.racks.values():
            budget = rack.budget_w
            if rack.power_w <= budget * (1 + self.tolerance):
                continue
            overdraw = rack.power_w - budget
            live = self._live_warnings(rack.rack_id, slot)
            live.append(slot)
            self._warning_slots[rack.rack_id] = live
            if len(live) >= self.warnings_before_cut:
                self._warning_slots[rack.rack_id] = []
                self._barred_until[rack.rack_id] = slot + 1 + self.cut_slots
                issued.append(
                    EnforcementAction(slot, rack.rack_id, "power_cut", overdraw)
                )
            else:
                issued.append(
                    EnforcementAction(slot, rack.rack_id, "warning", overdraw)
                )
        self._actions.extend(issued)
        return issued

    def is_barred(self, rack_id: str, slot: int) -> bool:
        """Whether the rack is barred from spot capacity at a slot."""
        return slot < self._barred_until.get(rack_id, 0)

    def barred_racks(self, slot: int) -> frozenset[str]:
        """All racks barred at a slot."""
        return frozenset(
            rack_id
            for rack_id, until in self._barred_until.items()
            if slot < until
        )

    def warning_count(self, rack_id: str, slot: int | None = None) -> int:
        """Outstanding warnings for a rack (reset by a cut).

        Args:
            rack_id: The rack to query.
            slot: Count only warnings still unexpired as of this slot;
                ``None`` counts every outstanding warning regardless of
                age.
        """
        if slot is None:
            return len(self._warning_slots.get(rack_id, []))
        return len(self._live_warnings(rack_id, slot))
