"""Cluster-level power distribution unit (PDU).

A cluster PDU feeds 50-80 racks at 200-300 kW in a production facility
(paper Section II-A; our testbed-scale scenario uses ~715 W PDUs with one
server standing in for each rack).  The PDU is where oversubscription and
spot capacity live: the sum of guaranteed subscriptions of attached racks
may exceed the physical capacity, and at runtime the headroom between the
physical capacity and the aggregate draw is the PDU's spot capacity
``P_m(t)`` (Eq. 3).
"""

from __future__ import annotations

from repro.errors import TopologyError

__all__ = ["Pdu"]


class Pdu:
    """A shared cluster PDU with a fixed physical capacity.

    Args:
        pdu_id: Unique identifier within the facility.
        capacity_w: Physical IT power capacity in watts.
    """

    def __init__(self, pdu_id: str, capacity_w: float) -> None:
        if not pdu_id:
            raise TopologyError("pdu_id must be non-empty")
        if capacity_w <= 0:
            raise TopologyError(
                f"PDU {pdu_id}: capacity must be positive, got {capacity_w}"
            )
        self.pdu_id = pdu_id
        self.capacity_w = float(capacity_w)
        self._base_capacity_w = self.capacity_w
        self._derate_fraction = 0.0
        self._event_fraction = 0.0
        self._rack_ids: list[str] = []

    @property
    def base_capacity_w(self) -> float:
        """Designed physical capacity, unaffected by transient deratings."""
        return self._base_capacity_w

    @property
    def derated(self) -> bool:
        """Whether a derating or grid-event cut is currently in force."""
        return self.capacity_w < self._base_capacity_w

    def _recompute(self) -> None:
        # Fault deratings and grid-event cuts are independent layers;
        # the deeper one binds (they overlap, never stack — both state
        # "this much of the designed capacity is unusable").
        fraction = max(self._derate_fraction, self._event_fraction)
        self.capacity_w = self._base_capacity_w * (1.0 - fraction)

    def apply_derating(self, fraction: float) -> None:
        """Temporarily lose ``fraction`` of the designed capacity.

        Models a failed power module, thermal derating, or a maintenance
        bypass: the *live* capacity — what the emergency scan and the
        spot-capacity predictor see — drops until
        :meth:`restore_capacity` is called.
        """
        if not 0 < fraction < 1:
            raise TopologyError(
                f"PDU {self.pdu_id}: derating fraction must be in (0, 1), "
                f"got {fraction}"
            )
        self._derate_fraction = fraction
        self._recompute()

    def restore_capacity(self) -> None:
        """End any derating (grid-event cuts, if any, stay in force)."""
        self._derate_fraction = 0.0
        self._recompute()

    def apply_event_cut(self, fraction: float) -> None:
        """Lose ``fraction`` of the designed capacity to a grid event.

        Models an EDR dispatch or utility-side derating cascade: an
        exogenous cut in usable capacity, independent of equipment
        faults, held until :meth:`clear_event_cut`.
        """
        if not 0 < fraction < 1:
            raise TopologyError(
                f"PDU {self.pdu_id}: event cut fraction must be in (0, 1), "
                f"got {fraction}"
            )
        self._event_fraction = fraction
        self._recompute()

    def clear_event_cut(self) -> None:
        """End any grid-event cut (fault deratings stay in force)."""
        self._event_fraction = 0.0
        self._recompute()

    @property
    def rack_ids(self) -> tuple[str, ...]:
        """Identifiers of racks fed by this PDU, in attachment order."""
        return tuple(self._rack_ids)

    def attach_rack(self, rack_id: str) -> None:
        """Attach a rack to this PDU (called by the topology builder)."""
        if rack_id in self._rack_ids:
            raise TopologyError(
                f"rack {rack_id} already attached to PDU {self.pdu_id}"
            )
        self._rack_ids.append(rack_id)

    def headroom_w(self, aggregate_power_w: float) -> float:
        """Spot capacity available given the PDU's aggregate draw.

        This is the instantaneous ``capacity - usage`` headroom; the
        operator's *predictor* decides how much of it to offer (it uses
        guaranteed capacity, not current draw, as the reference for racks
        that request spot capacity — see
        :class:`repro.prediction.spot.SpotCapacityPredictor`).
        """
        return max(0.0, self.capacity_w - aggregate_power_w)

    def utilization(self, aggregate_power_w: float) -> float:
        """Aggregate draw as a fraction of physical capacity (can be >1)."""
        return aggregate_power_w / self.capacity_w

    def __repr__(self) -> str:
        return (
            f"Pdu(pdu_id={self.pdu_id!r}, capacity_w={self.capacity_w}, "
            f"racks={len(self._rack_ids)})"
        )
