"""Capacity-emergency detection and logging.

Oversubscribed facilities occasionally exceed physical capacity; the
paper handles those through separate power-capping mechanisms [8] and
only requires that *spot capacity introduces no additional emergencies*
(Section V-B2), because spot capacity is offered only out of unused
headroom.  :class:`EmergencyLog` records every excursion so experiments
can verify that invariant: a run with SpotDC must log no more UPS/PDU
overload slots than the identical run under PowerCapped.
"""

from __future__ import annotations

import dataclasses

from repro.infrastructure.topology import PowerTopology

__all__ = ["Emergency", "EmergencyLog"]


@dataclasses.dataclass(frozen=True)
class Emergency:
    """One capacity excursion at one level during one slot.

    Attributes:
        slot: Simulation slot index.
        level: ``"rack"``, ``"pdu"``, or ``"ups"``.
        unit_id: Identifier of the overloaded unit.
        capacity_w: The enforced capacity at that level.
        power_w: The measured aggregate draw.
    """

    slot: int
    level: str
    unit_id: str
    capacity_w: float
    power_w: float

    @property
    def overload_w(self) -> float:
        """Watts above capacity."""
        return self.power_w - self.capacity_w


class EmergencyLog:
    """Scans a topology each slot and accumulates capacity excursions."""

    def __init__(self, tolerance: float = 0.01) -> None:
        """
        Args:
            tolerance: Relative slack before a draw counts as an overload.
                Circuit breakers tolerate brief, small excursions well
                beyond their rating ("any unexpected short-term power
                spike can be handled by circuit breaker tolerance",
                paper Section III-C); the default counts only excursions
                above 1% of capacity, sustained for a whole slot, as
                emergencies.  Pass 0 for strict accounting.
        """
        self._tolerance = tolerance
        self._events: list[Emergency] = []

    @property
    def events(self) -> tuple[Emergency, ...]:
        """All recorded emergencies, in detection order."""
        return tuple(self._events)

    def scan(self, topology: PowerTopology, slot: int) -> list[Emergency]:
        """Detect and record every excursion for the current samples.

        Rack draws are compared against the *enforced budget* (guaranteed
        plus any granted spot capacity); PDU and UPS draws against their
        physical capacities.

        Returns:
            The emergencies detected in this scan (also appended to
            :attr:`events`).
        """
        found: list[Emergency] = []
        for rack in topology.racks.values():
            budget = rack.budget_w
            if rack.power_w > budget * (1 + self._tolerance):
                found.append(
                    Emergency(slot, "rack", rack.rack_id, budget, rack.power_w)
                )
        for pdu_id, pdu in topology.pdus.items():
            power = topology.pdu_power_w(pdu_id)
            if power > pdu.capacity_w * (1 + self._tolerance):
                found.append(
                    Emergency(slot, "pdu", pdu_id, pdu.capacity_w, power)
                )
        ups_power = topology.ups_power_w()
        if ups_power > topology.ups.capacity_w * (1 + self._tolerance):
            found.append(
                Emergency(
                    slot, "ups", topology.ups.ups_id,
                    topology.ups.capacity_w, ups_power,
                )
            )
        self._events.extend(found)
        return found

    def count(self, level: str | None = None) -> int:
        """Number of recorded emergencies, optionally filtered by level."""
        if level is None:
            return len(self._events)
        return sum(1 for e in self._events if e.level == level)

    def overload_slots(self, level: str) -> set[int]:
        """Distinct slots in which the given level experienced an overload."""
        return {e.slot for e in self._events if e.level == level}

    def overload_slot_count(self, level: str) -> int:
        """Number of distinct overload slots at a level.

        The §V-B2 invariant is stated in these units: a SpotDC run must
        log no more UPS/PDU overload slots than the identical
        PowerCapped run.
        """
        return len(self.overload_slots(level))
