"""Rack/PDU/UPS power monitoring with bounded history.

The operator "continuously monitors power usage at rack levels" (paper
Algorithm 1, line 1).  :class:`PowerMonitor` records one sample per rack
per slot and derives the PDU- and UPS-level series the spot-capacity
predictor and the evaluation figures need — notably the slot-to-slot
PDU power-variation statistics of Fig. 7(a).

Under meter-fault injection (:mod:`repro.resilience.faults`) the monitor
keeps two views: the *metered* series — what the operator's billing
meters reported, which is what the spot-capacity predictor and the
energy accounting consume — and the *true* series, the physical draws.
The true series models the hardened protection path (breaker-level
telemetry) that the degradation controller projects excursions from;
it is only materialised when a metered sample ever diverges, so
fault-free simulations pay nothing for it.
"""

from __future__ import annotations

import collections
from collections.abc import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.infrastructure.topology import PowerTopology

__all__ = ["PowerMonitor"]


class PowerMonitor:
    """Per-slot power telemetry for a facility.

    Args:
        topology: The facility to monitor.
        history_slots: Number of most-recent slots retained per series.
            Year-long simulations keep memory bounded by default; pass a
            larger value when a full series is needed for CDF figures.
    """

    def __init__(self, topology: PowerTopology, history_slots: int = 100_000) -> None:
        if history_slots <= 0:
            raise SimulationError("history_slots must be positive")
        self._topology = topology
        self._history_slots = history_slots
        self._rack_series: dict[str, collections.deque[float]] = {
            rack_id: collections.deque(maxlen=history_slots)
            for rack_id in topology.racks
        }
        self._pdu_series: dict[str, collections.deque[float]] = {
            pdu_id: collections.deque(maxlen=history_slots)
            for pdu_id in topology.pdus
        }
        self._ups_series: collections.deque[float] = collections.deque(
            maxlen=history_slots
        )
        # True (physical) rack series; materialised lazily on the first
        # slot whose metered samples diverge from the true draws.
        self._true_rack_series: dict[str, collections.deque[float]] | None = None
        self._slots_recorded = 0

    @property
    def slots_recorded(self) -> int:
        """Total slots sampled since construction (not capped by history)."""
        return self._slots_recorded

    def record_slot(
        self,
        rack_power_w: Mapping[str, float],
        metered_power_w: Mapping[str, float] | None = None,
    ) -> None:
        """Record one slot of rack power samples.

        Args:
            rack_power_w: True physical power draw per rack id.  Every
                rack in the topology must be present — partial telemetry
                would silently corrupt PDU aggregates.
            metered_power_w: Operator-visible meter readings per rack id
                (defaults to the true draws).  Under meter-fault
                injection these diverge: the metered values feed the
                retained series (and hence the spot-capacity predictor
                and energy accounting), while the true draws stay on the
                topology and in the true-series shadow.
        """
        missing = set(self._topology.racks) - set(rack_power_w)
        if missing:
            raise SimulationError(
                f"missing power samples for racks: {sorted(missing)[:5]}"
            )
        metered = rack_power_w if metered_power_w is None else metered_power_w
        if metered is not rack_power_w:
            missing_meters = set(self._topology.racks) - set(metered)
            if missing_meters:
                raise SimulationError(
                    f"missing meter readings for racks: "
                    f"{sorted(missing_meters)[:5]}"
                )
            if self._true_rack_series is None and any(
                metered[rid] != rack_power_w[rid] for rid in rack_power_w
            ):
                # First divergence: shadow the (identical so far) history.
                self._true_rack_series = {
                    rack_id: collections.deque(
                        series, maxlen=self._history_slots
                    )
                    for rack_id, series in self._rack_series.items()
                }
        for rack_id, watts in rack_power_w.items():
            if rack_id not in self._rack_series:
                raise SimulationError(f"sample for unknown rack {rack_id!r}")
            self._topology.rack(rack_id).record_power(watts)
            self._rack_series[rack_id].append(float(metered[rack_id]))
            if self._true_rack_series is not None:
                self._true_rack_series[rack_id].append(float(watts))
        for pdu_id, pdu in self._topology.pdus.items():
            self._pdu_series[pdu_id].append(
                sum(float(metered[rid]) for rid in pdu.rack_ids)
            )
        self._ups_series.append(sum(float(w) for w in metered.values()))
        self._slots_recorded += 1

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------

    def rack_series(self, rack_id: str) -> np.ndarray:
        """Retained power series for one rack, oldest first."""
        return np.asarray(self._rack_series[rack_id], dtype=float)

    def pdu_series(self, pdu_id: str) -> np.ndarray:
        """Retained aggregate power series for one PDU, oldest first."""
        return np.asarray(self._pdu_series[pdu_id], dtype=float)

    def ups_series(self) -> np.ndarray:
        """Retained facility-level power series, oldest first."""
        return np.asarray(self._ups_series, dtype=float)

    def rack_recent_max_w(self, rack_id: str, window: int = 5) -> float:
        """Maximum of a rack's last ``window`` samples (0 before any).

        Used by the conservative spot-capacity predictor: a rack that
        recently drew close to its budget may do so again next slot, so
        its recent peak is a safer reference than its instantaneous draw.
        """
        if window <= 0:
            raise SimulationError("window must be positive")
        series = self._rack_series[rack_id]
        if not series:
            return 0.0
        recent = list(series)[-window:]
        return max(recent)

    def rack_recent_true_max_w(self, rack_id: str, window: int = 5) -> float:
        """Maximum of a rack's last ``window`` *true* samples.

        The hardened-path counterpart of :meth:`rack_recent_max_w`: the
        degradation controller projects excursions from physical draws,
        not from (possibly corrupted) meter readings.  Identical to
        :meth:`rack_recent_max_w` until a metered sample diverges.
        """
        if window <= 0:
            raise SimulationError("window must be positive")
        if self._true_rack_series is None:
            return self.rack_recent_max_w(rack_id, window)
        series = self._true_rack_series[rack_id]
        if not series:
            return 0.0
        return max(list(series)[-window:])

    def latest_pdu_power_w(self, pdu_id: str) -> float:
        """Most recent aggregate draw at a PDU (0 before any sample)."""
        series = self._pdu_series[pdu_id]
        return series[-1] if series else 0.0

    def latest_ups_power_w(self) -> float:
        """Most recent facility draw (0 before any sample)."""
        return self._ups_series[-1] if self._ups_series else 0.0

    # ------------------------------------------------------------------
    # Derived statistics (Fig. 7a)
    # ------------------------------------------------------------------

    def pdu_slot_variation(self, pdu_id: str) -> np.ndarray:
        """Relative slot-to-slot PDU power changes ``|ΔP| / P``.

        The paper observes PDU power changes of less than ±2.5% within one
        minute for 99% of slots (Section III-C); this series lets callers
        verify the generated traces reproduce that slow variation.
        """
        series = self.pdu_series(pdu_id)
        if series.size < 2:
            return np.empty(0)
        prev = series[:-1]
        delta = np.abs(np.diff(series))
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(prev > 0, delta / prev, 0.0)
        return rel

    def pdu_variation_quantile(self, pdu_id: str, quantile: float = 0.99) -> float:
        """A quantile of the relative slot-to-slot PDU variation."""
        rel = self.pdu_slot_variation(pdu_id)
        if rel.size == 0:
            return 0.0
        return float(np.quantile(rel, quantile))
