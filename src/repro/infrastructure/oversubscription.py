"""Oversubscription planning: sizing PDUs/UPS below the leased capacity.

Operators deliberately lease more capacity than the infrastructure can
physically deliver, because tenants' peaks rarely coincide (paper
Section II-B).  The paper's testbed applies 5% oversubscription at both
levels: a PDU leasing 750 W of guaranteed capacity is physically sized at
750 / 1.05 ≈ 715 W, and the UPS at the sum of PDU physical capacities
divided by 1.05 again.

:class:`OversubscriptionPlan` captures that arithmetic so scenarios can
state subscriptions and an oversubscription ratio and get consistent
physical capacities; the evaluation sweeps (Figs. 14-15) vary the ratio
to vary the available spot capacity.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.errors import ConfigurationError

__all__ = ["OversubscriptionPlan"]


@dataclasses.dataclass(frozen=True)
class OversubscriptionPlan:
    """Sizing rule mapping leased capacity to physical capacity.

    Attributes:
        pdu_ratio: Leased / physical at each PDU (>= 1).  1.0 means no
            oversubscription; the paper's default is 1.05.
        ups_ratio: Sum-of-PDU-physical / UPS-physical (>= 1).
    """

    pdu_ratio: float = 1.05
    ups_ratio: float = 1.05

    def __post_init__(self) -> None:
        if self.pdu_ratio < 1.0:
            raise ConfigurationError(
                f"pdu_ratio must be >= 1, got {self.pdu_ratio}"
            )
        if self.ups_ratio < 1.0:
            raise ConfigurationError(
                f"ups_ratio must be >= 1, got {self.ups_ratio}"
            )

    def pdu_capacity_w(self, leased_w: float) -> float:
        """Physical PDU capacity for a given total leased capacity."""
        if leased_w < 0:
            raise ConfigurationError(f"leased capacity must be >= 0, got {leased_w}")
        return leased_w / self.pdu_ratio

    def ups_capacity_w(self, pdu_capacities_w: Mapping[str, float]) -> float:
        """Physical UPS capacity given the PDUs' physical capacities.

        Matches the paper's testbed arithmetic:
        ``1370 W = (715 W + 724 W) / 1.05``.
        """
        total = sum(pdu_capacities_w.values())
        if total <= 0:
            raise ConfigurationError("PDU capacities must sum to a positive value")
        return total / self.ups_ratio

    @classmethod
    def for_spot_fraction(
        cls, spot_fraction: float, mean_utilization: float
    ) -> "OversubscriptionPlan":
        """Derive a plan that yields a target average spot-capacity fraction.

        The evaluation measures spot availability "in percentage of total
        guaranteed capacity" and adjusts the shared PDU capacity to sweep
        it (Section V-C).  If tenants draw ``mean_utilization`` of their
        subscriptions on average, then the physical capacity that leaves
        ``spot_fraction`` of the subscribed capacity spare is
        ``physical = (mean_utilization + spot_fraction) * leased``, i.e. a
        ratio of ``1 / (mean_utilization + spot_fraction)``.

        Args:
            spot_fraction: Target average spot capacity as a fraction of
                total guaranteed capacity (e.g. 0.15 for the paper's 15%).
            mean_utilization: Tenants' average draw as a fraction of
                subscriptions, excluding any spot usage.
        """
        if not 0 <= spot_fraction < 1:
            raise ConfigurationError("spot_fraction must be in [0, 1)")
        if not 0 < mean_utilization <= 1:
            raise ConfigurationError("mean_utilization must be in (0, 1]")
        denom = mean_utilization + spot_fraction
        ratio = max(1.0, 1.0 / denom)
        return cls(pdu_ratio=ratio, ups_ratio=1.0)
