"""Validated tree topology: one UPS, its PDUs, and their racks.

Multi-tenant data centers employ a tree-type power hierarchy (paper
Fig. 1): grid/generator -> ATS -> UPS -> cluster PDUs -> rack PDUs ->
servers.  The market only needs the three metered levels (UPS, PDU,
rack), so :class:`PowerTopology` models exactly those and validates the
invariants the market relies on:

* every rack is attached to exactly one existing PDU;
* identifiers are unique per level;
* racks are never shared between tenants (one ``tenant_id`` per rack).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import TopologyError
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.ups import Ups

__all__ = ["PowerTopology"]


class PowerTopology:
    """The facility's power-delivery tree.

    Build one with :meth:`PowerTopology.build` (preferred) or assemble it
    incrementally with :meth:`add_pdu` / :meth:`add_rack` and call
    :meth:`validate` before use.
    """

    def __init__(self, ups: Ups) -> None:
        self.ups = ups
        self._pdus: dict[str, Pdu] = {}
        self._racks: dict[str, Rack] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, ups: Ups, pdus: Iterable[Pdu], racks: Iterable[Rack]
    ) -> "PowerTopology":
        """Build and validate a topology in one call."""
        topology = cls(ups)
        for pdu in pdus:
            topology.add_pdu(pdu)
        for rack in racks:
            topology.add_rack(rack)
        topology.validate()
        return topology

    def add_pdu(self, pdu: Pdu) -> None:
        """Register a cluster PDU under the UPS."""
        if pdu.pdu_id in self._pdus:
            raise TopologyError(f"duplicate PDU id {pdu.pdu_id!r}")
        self._pdus[pdu.pdu_id] = pdu

    def add_rack(self, rack: Rack) -> None:
        """Register a rack and attach it to its PDU."""
        if rack.rack_id in self._racks:
            raise TopologyError(f"duplicate rack id {rack.rack_id!r}")
        pdu = self._pdus.get(rack.pdu_id)
        if pdu is None:
            raise TopologyError(
                f"rack {rack.rack_id!r} references unknown PDU {rack.pdu_id!r}"
            )
        pdu.attach_rack(rack.rack_id)
        self._racks[rack.rack_id] = rack

    def validate(self) -> None:
        """Check global invariants; raises :class:`TopologyError` on failure."""
        if not self._pdus:
            raise TopologyError("topology has no PDUs")
        if not self._racks:
            raise TopologyError("topology has no racks")
        for pdu in self._pdus.values():
            for rack_id in pdu.rack_ids:
                if rack_id not in self._racks:
                    raise TopologyError(
                        f"PDU {pdu.pdu_id!r} lists unknown rack {rack_id!r}"
                    )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def pdus(self) -> Mapping[str, Pdu]:
        """All PDUs keyed by id (read-only view by convention)."""
        return self._pdus

    @property
    def racks(self) -> Mapping[str, Rack]:
        """All racks keyed by id (read-only view by convention)."""
        return self._racks

    def pdu(self, pdu_id: str) -> Pdu:
        """Look up a PDU by id."""
        try:
            return self._pdus[pdu_id]
        except KeyError:
            raise TopologyError(f"unknown PDU {pdu_id!r}") from None

    def rack(self, rack_id: str) -> Rack:
        """Look up a rack by id."""
        try:
            return self._racks[rack_id]
        except KeyError:
            raise TopologyError(f"unknown rack {rack_id!r}") from None

    def racks_of_pdu(self, pdu_id: str) -> list[Rack]:
        """Racks fed by ``pdu_id``, in attachment order (the set R_m)."""
        return [self._racks[rid] for rid in self.pdu(pdu_id).rack_ids]

    def racks_of_tenant(self, tenant_id: str) -> list[Rack]:
        """All racks owned by a tenant (possibly spanning several PDUs)."""
        return [r for r in self._racks.values() if r.tenant_id == tenant_id]

    def tenant_ids(self) -> list[str]:
        """Distinct tenant ids, in first-rack order."""
        seen: dict[str, None] = {}
        for rack in self._racks.values():
            seen.setdefault(rack.tenant_id, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Aggregate power
    # ------------------------------------------------------------------

    def pdu_power_w(self, pdu_id: str) -> float:
        """Current aggregate draw at a PDU (sum of its racks' last samples)."""
        return sum(r.power_w for r in self.racks_of_pdu(pdu_id))

    def ups_power_w(self) -> float:
        """Current aggregate facility draw at the UPS."""
        return sum(r.power_w for r in self._racks.values())

    def total_guaranteed_w(self) -> float:
        """Total guaranteed (subscribed) capacity across all racks."""
        return sum(r.guaranteed_w for r in self._racks.values())

    def clear_all_spot_budgets(self) -> None:
        """Revoke every rack's spot grant (start-of-slot default state)."""
        for rack in self._racks.values():
            rack.clear_spot_budget()

    def restore_all_capacities(self) -> None:
        """End every transient derating and event cut (end-of-run cleanup)."""
        for pdu in self._pdus.values():
            pdu.restore_capacity()
            pdu.clear_event_cut()
        self.ups.restore_capacity()
        self.ups.clear_event_cut()

    def __repr__(self) -> str:
        return (
            f"PowerTopology(ups={self.ups.ups_id!r}, pdus={len(self._pdus)}, "
            f"racks={len(self._racks)})"
        )
