"""Power-delivery substrate: UPS -> PDU -> rack hierarchy, metering, and
oversubscription — the physical layer the SpotDC market operates on.
"""

from repro.infrastructure.constraints import (
    CapacityConstraint,
    HeatZone,
    PhaseAssignment,
    zone_constraints,
)
from repro.infrastructure.emergencies import Emergency, EmergencyLog
from repro.infrastructure.enforcement import EnforcementAction, EnforcementPolicy
from repro.infrastructure.monitor import PowerMonitor
from repro.infrastructure.oversubscription import OversubscriptionPlan
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups

__all__ = [
    "CapacityConstraint",
    "Emergency",
    "EmergencyLog",
    "EnforcementAction",
    "EnforcementPolicy",
    "OversubscriptionPlan",
    "Pdu",
    "PowerMonitor",
    "PowerTopology",
    "HeatZone",
    "PhaseAssignment",
    "Rack",
    "Ups",
    "zone_constraints",
]
