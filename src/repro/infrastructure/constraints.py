"""Generic capacity constraints: phase balance and heat density.

The paper's allocation model (Section III-A) names two further
constraint families beyond rack/PDU/UPS capacities, both "incorporated
following the model in [9]" (power routing):

* **phase balance** — three-phase PDUs/UPSes need similar per-phase
  draw, so the spot capacity granted to the racks on one phase of a PDU
  is bounded;
* **heat density** — the cooling system limits the total server power
  over an area, bounding the spot capacity granted within a heat zone.

Both reduce to the same form: *the grants to some set of racks must not
exceed a cap*.  :class:`CapacityConstraint` is that form, and the
clearing engine accepts any number of them alongside Eqs. (2)-(4).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.errors import ConfigurationError, TopologyError
from repro.infrastructure.topology import PowerTopology

__all__ = [
    "CapacityConstraint",
    "PhaseAssignment",
    "HeatZone",
]

#: The three phases of a three-phase power feed.
_PHASES = ("A", "B", "C")


@dataclasses.dataclass(frozen=True)
class CapacityConstraint:
    """An upper bound on the spot capacity granted to a set of racks.

    Attributes:
        name: Diagnostic label (e.g. ``"pdu:0/phase:A"``).
        rack_ids: The racks the constraint covers.
        cap_w: Maximum total spot watts grantable to those racks.
    """

    name: str
    rack_ids: frozenset[str]
    cap_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("constraint name must be non-empty")
        if not self.rack_ids:
            raise ConfigurationError(f"constraint {self.name}: empty rack set")
        if self.cap_w < 0:
            raise ConfigurationError(
                f"constraint {self.name}: cap must be >= 0, got {self.cap_w}"
            )


class PhaseAssignment:
    """Which phase of its PDU each rack is fed from.

    Args:
        topology: The facility.
        rack_phase: Rack id -> ``"A"``/``"B"``/``"C"``.  Racks omitted
            are assigned round-robin within their PDU (the balanced
            default an electrician would wire).
    """

    def __init__(
        self,
        topology: PowerTopology,
        rack_phase: Mapping[str, str] | None = None,
    ) -> None:
        rack_phase = dict(rack_phase or {})
        for rack_id, phase in rack_phase.items():
            if rack_id not in topology.racks:
                raise TopologyError(f"phase assignment for unknown rack {rack_id!r}")
            if phase not in _PHASES:
                raise ConfigurationError(
                    f"rack {rack_id}: phase must be one of {_PHASES}, got {phase!r}"
                )
        self._topology = topology
        self._phase_of: dict[str, str] = {}
        for pdu_id in topology.pdus:
            for i, rack in enumerate(topology.racks_of_pdu(pdu_id)):
                self._phase_of[rack.rack_id] = rack_phase.get(
                    rack.rack_id, _PHASES[i % len(_PHASES)]
                )

    def phase_of(self, rack_id: str) -> str:
        """The phase feeding a rack."""
        try:
            return self._phase_of[rack_id]
        except KeyError:
            raise TopologyError(f"unknown rack {rack_id!r}") from None

    def racks_on(self, pdu_id: str, phase: str) -> list[str]:
        """Racks on one phase of one PDU."""
        if phase not in _PHASES:
            raise ConfigurationError(f"unknown phase {phase!r}")
        return [
            rack.rack_id
            for rack in self._topology.racks_of_pdu(pdu_id)
            if self._phase_of[rack.rack_id] == phase
        ]

    def constraints(
        self, imbalance_tolerance: float = 0.2
    ) -> list[CapacityConstraint]:
        """Per-phase spot-capacity constraints for every PDU.

        Each phase of a PDU may carry at most its balanced share of the
        PDU capacity plus a tolerance:
        ``cap/3 * (1 + imbalance_tolerance)``.  The *spot* headroom of
        the phase is that bound minus the phase's current draw, computed
        at forecast time by :func:`phase_headroom`.

        This method returns the *static* bounds (draw-independent caps);
        use :meth:`phase_headroom` for runtime constraints.
        """
        if not 0 <= imbalance_tolerance <= 1:
            raise ConfigurationError("imbalance_tolerance must be in [0, 1]")
        constraints = []
        for pdu_id, pdu in self._topology.pdus.items():
            share = pdu.capacity_w / len(_PHASES) * (1 + imbalance_tolerance)
            for phase in _PHASES:
                racks = self.racks_on(pdu_id, phase)
                if racks:
                    constraints.append(
                        CapacityConstraint(
                            name=f"{pdu_id}/phase:{phase}",
                            rack_ids=frozenset(racks),
                            cap_w=share,
                        )
                    )
        return constraints

    def phase_headroom(
        self, imbalance_tolerance: float = 0.2, safety_margin: float = 0.0
    ) -> list[CapacityConstraint]:
        """Runtime per-phase *spot* headroom from current rack draws.

        Args:
            imbalance_tolerance: Allowed per-phase excess over the
                balanced share.
            safety_margin: Fraction of the phase bound held back.
        """
        if not 0 <= safety_margin < 1:
            raise ConfigurationError("safety_margin must be in [0, 1)")
        constraints = []
        for static in self.constraints(imbalance_tolerance):
            draw = sum(
                self._topology.rack(rack_id).power_w
                for rack_id in static.rack_ids
            )
            headroom = max(0.0, static.cap_w * (1 - safety_margin) - draw)
            constraints.append(
                CapacityConstraint(
                    name=static.name,
                    rack_ids=static.rack_ids,
                    cap_w=headroom,
                )
            )
        return constraints


@dataclasses.dataclass(frozen=True)
class HeatZone:
    """A cooling zone limiting total server power over an area.

    Attributes:
        name: Zone label (e.g. ``"aisle:3"``).
        rack_ids: Racks inside the zone (may span PDUs).
        max_power_w: The zone's cooling limit on total IT power.
    """

    name: str
    rack_ids: frozenset[str]
    max_power_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("zone name must be non-empty")
        if not self.rack_ids:
            raise ConfigurationError(f"zone {self.name}: empty rack set")
        if self.max_power_w <= 0:
            raise ConfigurationError(
                f"zone {self.name}: max_power_w must be positive"
            )

    def headroom(
        self,
        topology: PowerTopology,
        reference_power_w: Mapping[str, float] | None = None,
        safety_margin: float = 0.0,
    ) -> CapacityConstraint:
        """The zone's current spot headroom as a clearing constraint.

        Note that a heat zone bounds *total* power, which member racks
        can approach on guaranteed capacity alone — the market can only
        keep its *grants* within the forecast headroom.  As with the
        PDU-level predictor, a conservative per-rack reference (e.g. the
        rolling recent maximum) and/or a ``safety_margin`` absorb
        guaranteed-capacity ramps between slots; residual short
        excursions fall under the cooling system's thermal inertia, the
        thermal analogue of circuit-breaker tolerance.

        Args:
            topology: Facility with current rack power recorded.
            reference_power_w: Optional per-rack reference power
                overriding the instantaneous draw (clamped to the rack's
                guaranteed capacity).
            safety_margin: Fraction of the zone limit held back.
        """
        unknown = self.rack_ids - set(topology.racks)
        if unknown:
            raise TopologyError(
                f"zone {self.name}: unknown racks {sorted(unknown)[:5]}"
            )
        if not 0 <= safety_margin < 1:
            raise ConfigurationError("safety_margin must be in [0, 1)")
        reference_power_w = reference_power_w or {}
        draw = 0.0
        for rack_id in self.rack_ids:
            rack = topology.rack(rack_id)
            draw += min(
                reference_power_w.get(rack_id, rack.power_w),
                rack.guaranteed_w,
            )
        usable = self.max_power_w * (1 - safety_margin)
        return CapacityConstraint(
            name=f"heat:{self.name}",
            rack_ids=self.rack_ids,
            cap_w=max(0.0, usable - draw),
        )


def zone_constraints(
    zones: Iterable[HeatZone],
    topology: PowerTopology,
    reference_power_w: Mapping[str, float] | None = None,
    safety_margin: float = 0.0,
) -> list[CapacityConstraint]:
    """Runtime headroom constraints for a set of heat zones."""
    return [
        zone.headroom(topology, reference_power_w, safety_margin)
        for zone in zones
    ]
