"""Facility-level UPS model.

The UPS sits above all cluster PDUs (Fig. 1 of the paper) and imposes the
top-level capacity constraint (Eq. 4).  Like PDUs it is typically
oversubscribed: in the paper's testbed the two PDUs' physical capacities
sum to 1439 W while the UPS is sized at 1370 W (= sum / 1.05).
"""

from __future__ import annotations

from repro.errors import TopologyError

__all__ = ["Ups"]


class Ups:
    """The facility UPS with a fixed capacity.

    Args:
        ups_id: Identifier (facilities in this library have exactly one
            UPS, matching the paper's model).
        capacity_w: Protected IT power capacity in watts.
    """

    def __init__(self, ups_id: str, capacity_w: float) -> None:
        if not ups_id:
            raise TopologyError("ups_id must be non-empty")
        if capacity_w <= 0:
            raise TopologyError(
                f"UPS {ups_id}: capacity must be positive, got {capacity_w}"
            )
        self.ups_id = ups_id
        self.capacity_w = float(capacity_w)
        self._base_capacity_w = self.capacity_w
        self._derate_fraction = 0.0
        self._event_fraction = 0.0

    @property
    def base_capacity_w(self) -> float:
        """Designed protected capacity, unaffected by transient deratings."""
        return self._base_capacity_w

    @property
    def derated(self) -> bool:
        """Whether a derating or grid-event cut is currently in force."""
        return self.capacity_w < self._base_capacity_w

    def _recompute(self) -> None:
        # Fault deratings and grid-event cuts are independent layers;
        # the deeper one binds (they overlap, never stack — both state
        # "this much of the designed capacity is unusable").
        fraction = max(self._derate_fraction, self._event_fraction)
        self.capacity_w = self._base_capacity_w * (1.0 - fraction)

    def apply_derating(self, fraction: float) -> None:
        """Temporarily lose ``fraction`` of the designed capacity.

        Models a failed UPS module or battery string: the *live*
        capacity drops until :meth:`restore_capacity` is called.
        """
        if not 0 < fraction < 1:
            raise TopologyError(
                f"UPS {self.ups_id}: derating fraction must be in (0, 1), "
                f"got {fraction}"
            )
        self._derate_fraction = fraction
        self._recompute()

    def restore_capacity(self) -> None:
        """End any derating (grid-event cuts, if any, stay in force)."""
        self._derate_fraction = 0.0
        self._recompute()

    def apply_event_cut(self, fraction: float) -> None:
        """Lose ``fraction`` of the designed capacity to a grid event.

        Models an EDR dispatch or utility-side derating cascade: an
        exogenous cut in usable capacity, independent of equipment
        faults, held until :meth:`clear_event_cut`.
        """
        if not 0 < fraction < 1:
            raise TopologyError(
                f"UPS {self.ups_id}: event cut fraction must be in (0, 1), "
                f"got {fraction}"
            )
        self._event_fraction = fraction
        self._recompute()

    def clear_event_cut(self) -> None:
        """End any grid-event cut (fault deratings stay in force)."""
        self._event_fraction = 0.0
        self._recompute()

    def headroom_w(self, aggregate_power_w: float) -> float:
        """Instantaneous spot capacity at the UPS (``P_o(t)`` before prediction)."""
        return max(0.0, self.capacity_w - aggregate_power_w)

    def utilization(self, aggregate_power_w: float) -> float:
        """Aggregate facility draw as a fraction of UPS capacity."""
        return aggregate_power_w / self.capacity_w

    def __repr__(self) -> str:
        return f"Ups(ups_id={self.ups_id!r}, capacity_w={self.capacity_w})"
