"""The shock absorber: per-slot resolution of grid events into market action.

Each slot the absorber resolves the schedule's active events through an
escalation ladder, cheapest intervention first:

1. **Raise the reserve price** — wholesale coupling / price spikes pin
   the market's reserve price, and capacity events add a severity-scaled
   uplift; demand that clears below the new reserve simply does not buy.
2. **Tighten the forecast release** — the release quantile shrinks with
   the deepest active cut (risk-aware policies), and the released spot
   watts of shocked units are haircut by their cut fraction.
3. **Revoke spot grants** — the event cut lowers the unit's usable
   ``capacity_w`` *before* enforcement, so the existing
   :class:`~repro.resilience.degradation.DegradationController` revokes
   grants in ascending clearing-value order with credit notes (the
   paper's §III-C ladder), keeping settlement neutral.
4. **Emergency cap** — if revocation alone cannot clear the excursion,
   the controller's ``emergency_cap`` escalation fires; the absorber
   remembers the capped unit and releases **zero** spot there until the
   event window closes.

Every rung de-escalates when the window closes: event capacity cuts are
cleared (restoring pre-event capacity), the reserve price returns to the
scenario's own parameters, and capped-unit warning state is dropped.

The absorber also machine-checks **EDR compliance**: for each capacity
event it tracks how many slots after onset the facility draw first fell
back under the shocked capacity (the compliance lag), and records a
violation when that takes longer than the profile's ``compliance_slots``
deadline.

The absorber lives inside the engine and is pickled into checkpoints
with it, so a crash mid-event resumes with the ladder state — applied
cuts, swapped prices, capped units, open compliance windows — intact.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.events.profile import EventProfile
from repro.events.types import EventSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.forecast.release import RiskAwareReleasePolicy
    from repro.prediction.spot import SpotCapacityForecast

__all__ = ["ShockAbsorber"]

#: Floor for a tightened release quantile (rung 2 never goes to zero
#: outright — zeroing is rung 4's job, per capped unit).
_MIN_QUANTILE = 0.01

#: Histogram buckets for the compliance-lag metric, in slots.
_LAG_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0)

#: Draw/capacity slack matching ``EmergencyLog``'s circuit-breaker
#: tolerance: compliance uses the same yardstick as overload detection.
_COMPLIANCE_TOLERANCE = 0.01

#: Internal unit key for the facility UPS (PDUs use their own ids).
_UPS_KEY = None


class ShockAbsorber:
    """Resolves an :class:`EventSchedule` slot by slot (see module docs)."""

    def __init__(self, profile: EventProfile) -> None:
        self.profile = profile
        self.schedule: EventSchedule | None = None
        # Ladder state (all of it checkpoints with the engine).
        self._cuts_in_force: dict[str | None, float] = {}
        self._capped: set[str | None] = set()
        self._base_params = None
        self._price_active = False
        # Compliance tracking (invariant 2).
        self._watches: list[dict] = []
        self._compliance_lags: list[int] = []
        self._violations: list[tuple[int, str]] = []
        # Run counters for the summary / events report.
        self._events_seen = 0
        self._event_slots = 0
        self._shed_watts = 0.0
        self._emergency_caps = 0
        self._max_reserve_price = 0.0
        self._instruments = None

    # ------------------------------------------------------------------
    # Lifecycle

    def prepare(self, scenario_seed: int, slots: int) -> None:
        """Materialise the event schedule for a fresh run (not on resume)."""
        self.schedule = self.profile.build_schedule(scenario_seed, slots)

    def bind_telemetry(self, registry) -> None:
        """Create (or re-acquire, after resume) the ``events_*`` metrics."""
        self._instruments = (
            registry.gauge("events_active"),
            registry.counter("events_shed_watts_total"),
            registry.histogram(
                "events_compliance_lag_slots", buckets=_LAG_BUCKETS
            ),
        )

    # ------------------------------------------------------------------
    # Rung 1 + capacity cuts: top of slot

    def on_slot_start(self, slot: int, topology, allocator, tracer) -> None:
        """Apply this slot's cuts and price demands; de-escalate closed windows."""
        schedule = self.schedule
        if schedule is None:
            return
        for event in schedule.starting(slot):
            self._events_seen += 1
            tracer.event(f"grid_event.start.{event.kind}")
            if event.capacity_cut(event.slot) > 0.0:
                self._watches.append({"onset": slot, "unit": event.unit_key})
        for event in schedule.ending(slot):
            tracer.event(f"grid_event.end.{event.kind}")
        cuts = schedule.capacity_cuts(slot)
        for key, fraction in cuts.items():
            if self._cuts_in_force.get(key) != fraction:
                self._unit(topology, key).apply_event_cut(fraction)
                self._cuts_in_force[key] = fraction
        for key in [k for k in self._cuts_in_force if k not in cuts]:
            # Window closed: restore pre-event capacity and drop the
            # emergency-cap warning state (rung 4 de-escalation).
            self._unit(topology, key).clear_event_cut()
            del self._cuts_in_force[key]
            self._capped.discard(key)
        self._apply_reserve_price(slot, allocator)
        active = schedule.active(slot)
        if active:
            self._event_slots += 1
        if self._instruments is not None:
            self._instruments[0].set(float(len(active)))

    def _apply_reserve_price(self, slot: int, allocator) -> None:
        """Rung 1: pin the reserve price to the event/trace demand."""
        params = getattr(allocator, "params", None)
        if params is None or not hasattr(params, "reserve_price"):
            return  # marketless baseline: nothing to reprice
        if self._base_params is None:
            self._base_params = params
        base = self._base_params
        demands = [base.reserve_price]
        tracked = self.schedule.reserve_price_at(slot)
        if tracked is not None:
            demands.append(tracked)
        severity = self.severity
        if severity > 0.0 and self.profile.reserve_uplift > 0.0:
            demands.append(base.reserve_price + severity * self.profile.reserve_uplift)
        ceiling = base.max_price - base.price_step
        want = min(max(demands), ceiling)
        self._max_reserve_price = max(self._max_reserve_price, want)
        if want != params.reserve_price:
            self._swap_params(allocator, dataclasses.replace(base, reserve_price=want))
            self._price_active = want != base.reserve_price
        elif not self._price_active and params is not base:
            self._swap_params(allocator, base)

    @staticmethod
    def _swap_params(allocator, params) -> None:
        allocator.params = params
        engine = getattr(allocator, "engine", None)
        if engine is not None and hasattr(engine, "params"):
            engine.params = params

    # ------------------------------------------------------------------
    # Rung 2: forecast release tightening

    @property
    def severity(self) -> float:
        """Deepest capacity cut currently in force (0 when calm)."""
        return max(self._cuts_in_force.values(), default=0.0)

    def effective_release_policy(
        self, policy: "RiskAwareReleasePolicy"
    ) -> "RiskAwareReleasePolicy":
        """Tighten a risk-aware release quantile by the active severity."""
        severity = self.severity
        if severity <= 0.0 or policy.risk_quantile is None:
            return policy
        tightened = max(_MIN_QUANTILE, policy.risk_quantile * (1.0 - severity))
        return dataclasses.replace(policy, risk_quantile=tightened)

    def adjust_release(
        self, forecast: "SpotCapacityForecast"
    ) -> "SpotCapacityForecast":
        """Haircut released spot on shocked units; zero it on capped ones."""
        if not self._cuts_in_force and not self._capped:
            return forecast
        pdu_spot = dict(forecast.pdu_spot_w)
        ups_spot = forecast.ups_spot_w
        for key, fraction in self._cuts_in_force.items():
            if key is _UPS_KEY:
                ups_spot *= 1.0 - fraction
            elif key in pdu_spot:
                pdu_spot[key] *= 1.0 - fraction
        if _UPS_KEY in self._capped:
            ups_spot = 0.0
            pdu_spot = {pdu_id: 0.0 for pdu_id in pdu_spot}
        else:
            for key in self._capped:
                if key in pdu_spot:
                    pdu_spot[key] = 0.0
        return dataclasses.replace(
            forecast, pdu_spot_w=pdu_spot, ups_spot_w=ups_spot
        )

    # ------------------------------------------------------------------
    # Rungs 3-4: enforcement bookkeeping

    def note_control_actions(self, slot: int, actions) -> None:
        """Track degradation-control shedding attributable to events."""
        if not self._cuts_in_force:
            return
        for action in actions:
            self._shed_watts += action.watts
            if self._instruments is not None and action.watts > 0.0:
                self._instruments[1].inc(action.watts)
            if action.kind != "emergency_cap":
                continue
            self._emergency_caps += 1
            key = _UPS_KEY if action.level == "ups" else action.unit_id
            if key in self._cuts_in_force:
                self._capped.add(key)

    def observe_draw(self, slot: int, topology) -> None:
        """Close compliance windows whose draw is back under capacity."""
        if not self._watches:
            return
        still_open: list[dict] = []
        deadline = self.profile.compliance_slots
        for watch in self._watches:
            key = watch["unit"]
            if key is _UPS_KEY:
                draw = topology.ups_power_w()
                capacity = topology.ups.capacity_w
            else:
                draw = topology.pdu_power_w(key)
                capacity = topology.pdu(key).capacity_w
            lag = slot - watch["onset"]
            if draw <= capacity * (1.0 + _COMPLIANCE_TOLERANCE):
                self._compliance_lags.append(lag)
                if self._instruments is not None:
                    self._instruments[2].observe(float(lag))
                continue
            if key not in self._cuts_in_force:
                # The window closed before the draw complied at the
                # shocked capacity — the shock outlived the excursion
                # chase, which is itself a compliance failure.
                self._violations.append((watch["onset"], key or "ups"))
                continue
            if lag >= deadline:
                self._violations.append((watch["onset"], key or "ups"))
                continue
            still_open.append(watch)
        self._watches = still_open

    # ------------------------------------------------------------------
    # Teardown + reporting

    def finish(self, allocator) -> None:
        """Restore the scenario's own market parameters (rung 1 unwind)."""
        if self._base_params is not None:
            self._swap_params(allocator, self._base_params)
            self._price_active = False

    @property
    def compliance_lags(self) -> tuple[int, ...]:
        """Closed compliance windows' onset→compliance lags, in slots."""
        return tuple(self._compliance_lags)

    @property
    def violations(self) -> tuple[tuple[int, str], ...]:
        """(onset slot, unit) pairs that missed the K-slot deadline."""
        return tuple(self._violations)

    @property
    def capped_units(self) -> frozenset:
        """Units currently under the rung-4 emergency-cap warning state."""
        return frozenset(self._capped)

    @property
    def cuts_in_force(self) -> dict:
        """Per-unit event capacity cuts currently applied."""
        return dict(self._cuts_in_force)

    def summary(self) -> dict:
        """The run's events report (attached to the simulation result)."""
        lags = self._compliance_lags
        return {
            "events": self._events_seen,
            "event_slots": self._event_slots,
            "shed_watts": self._shed_watts,
            "emergency_caps": self._emergency_caps,
            "compliance_max_lag_slots": max(lags) if lags else 0,
            "compliance_violations": len(self._violations),
            "max_reserve_price": self._max_reserve_price,
        }

    # ------------------------------------------------------------------

    @staticmethod
    def _unit(topology, key):
        return topology.ups if key is _UPS_KEY else topology.pdu(key)
