"""The ``events`` scenario component: declarative grid-event schedules.

An :class:`EventProfile` is the frozen, spec-round-trippable
description of a horizon's exogenous grid events — a manual schedule
of typed events, an optional seeded arrival process that draws extra
EDR shocks, and an optional wholesale price trace for reserve-price
coupling.  ``build_schedule`` materialises it into an immutable
:class:`~repro.events.types.EventSchedule` once before slot 0, so the
same profile + seed always replays the same events (crash/resume
byte-identity rests on this).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.events.types import (
    DeratingCascade,
    EdrShock,
    EventSchedule,
    GridEvent,
    PriceSpike,
)

__all__ = ["EventProfile"]

#: Sub-stream tag so the arrival process never shares a stream with
#: tenant workloads or fault channels seeded from the same scenario seed.
_ARRIVAL_STREAM = 104729

#: Event constructors by spec ``kind``.
_EVENT_KINDS = {
    "edr_shock": EdrShock,
    "price_spike": PriceSpike,
    "derating_cascade": DeratingCascade,
}


@dataclasses.dataclass(frozen=True)
class EventProfile:
    """Declarative grid-event plan for a scenario.

    Attributes:
        schedule: Manually placed typed events.
        seed: Seed for the arrival process; ``None`` derives it from
            the scenario seed (same scenario → same storm).
        rate: Per-slot probability of a random EDR shock arriving
            (0 disables the arrival process).
        shock_fraction: Capacity cut of randomly arriving shocks.
        shock_duration_slots: Window length of randomly arriving shocks.
        compliance_slots: K — slots after onset within which the
            facility draw must be back under the shocked capacity
            (invariant 2; the absorber's compliance deadline).
        price_coupling: Multiplier from wholesale price to reserve
            price when tracking a trace.
        reserve_uplift: Reserve-price uplift ($/kWh at full severity)
            the absorber's first rung applies during capacity events —
            scaled by the deepest active cut.
        wholesale_trace: Optional per-slot wholesale price trace.
    """

    schedule: tuple[GridEvent, ...] = ()
    seed: int | None = None
    rate: float = 0.0
    shock_fraction: float = 0.3
    shock_duration_slots: int = 12
    compliance_slots: int = 3
    price_coupling: float = 1.0
    reserve_uplift: float = 0.0
    wholesale_trace: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", tuple(self.schedule))
        if self.wholesale_trace is not None:
            object.__setattr__(
                self, "wholesale_trace", tuple(self.wholesale_trace)
            )
        if not 0.0 <= self.rate < 1.0:
            raise ConfigurationError(
                f"events rate must be in [0, 1), got {self.rate}"
            )
        if not 0.0 < self.shock_fraction < 1.0:
            raise ConfigurationError(
                "events shock_fraction must be in (0, 1), "
                f"got {self.shock_fraction}"
            )
        if self.shock_duration_slots < 1:
            raise ConfigurationError(
                "events shock_duration_slots must be >= 1, "
                f"got {self.shock_duration_slots}"
            )
        if self.compliance_slots < 1:
            raise ConfigurationError(
                f"events compliance_slots must be >= 1, got {self.compliance_slots}"
            )
        if self.price_coupling < 0.0:
            raise ConfigurationError(
                f"events price_coupling must be >= 0, got {self.price_coupling}"
            )
        if self.reserve_uplift < 0.0:
            raise ConfigurationError(
                f"events reserve_uplift must be >= 0, got {self.reserve_uplift}"
            )
        for event in self.schedule:
            if not isinstance(event, GridEvent):
                raise ConfigurationError(
                    f"events schedule entries must be GridEvents, got {event!r}"
                )

    def build_schedule(self, scenario_seed: int, slots: int) -> EventSchedule:
        """Materialise the horizon's events, deterministically.

        Manual events are kept as placed; when ``rate`` is positive a
        seeded arrival process draws additional EDR shocks (at most one
        in flight at a time) over slots ``1..slots-1``.
        """
        events = list(self.schedule)
        if self.rate > 0.0:
            seed = self.seed if self.seed is not None else scenario_seed
            rng = np.random.default_rng([int(seed), _ARRIVAL_STREAM])
            busy_until = 0
            for slot in range(1, slots):
                if slot < busy_until:
                    continue
                if rng.random() < self.rate:
                    events.append(
                        EdrShock(
                            slot=slot,
                            duration_slots=self.shock_duration_slots,
                            fraction=self.shock_fraction,
                        )
                    )
                    busy_until = slot + self.shock_duration_slots + 1
        events.sort(key=lambda e: (e.slot, e.kind))
        return EventSchedule(
            events=tuple(events),
            wholesale_trace=self.wholesale_trace,
            price_coupling=self.price_coupling,
        )

    @classmethod
    def from_spec(cls, block: dict) -> "EventProfile":
        """Build a profile from a normalised ``events`` spec block."""
        schedule = []
        for entry in block.get("schedule") or ():
            entry = dict(entry)
            kind = entry.pop("kind", None)
            factory = _EVENT_KINDS.get(kind)
            if factory is None:
                raise ConfigurationError(
                    f"unknown event kind {kind!r}; expected one of "
                    f"{sorted(_EVENT_KINDS)}"
                )
            try:
                schedule.append(factory(**entry))
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid {kind} event fields {sorted(entry)}: {exc}"
                ) from exc
        trace = block.get("wholesale_trace")
        return cls(
            schedule=tuple(schedule),
            seed=block.get("seed"),
            rate=float(block.get("rate", 0.0)),
            shock_fraction=float(block.get("shock_fraction", 0.3)),
            shock_duration_slots=int(block.get("shock_duration_slots", 12)),
            compliance_slots=int(block.get("compliance_slots", 3)),
            price_coupling=float(block.get("price_coupling", 1.0)),
            reserve_uplift=float(block.get("reserve_uplift", 0.0)),
            wholesale_trace=None if trace is None else tuple(trace),
        )

    def to_spec(self) -> dict:
        """The profile as a plain ``events`` spec block (round-trips)."""
        schedule = []
        for event in self.schedule:
            entry = {"kind": event.kind}
            entry.update(dataclasses.asdict(event))
            schedule.append(entry)
        return {
            "schedule": schedule,
            "seed": self.seed,
            "rate": self.rate,
            "shock_fraction": self.shock_fraction,
            "shock_duration_slots": self.shock_duration_slots,
            "compliance_slots": self.compliance_slots,
            "price_coupling": self.price_coupling,
            "reserve_uplift": self.reserve_uplift,
            "wholesale_trace": (
                None
                if self.wholesale_trace is None
                else list(self.wholesale_trace)
            ),
        }
