"""Typed exogenous grid events and the schedule that replays them.

The paper's market assumes the operator's usable capacity and reserve
price are static over the horizon.  Real colos face two exogenous
couplings (ROADMAP's market-coupling item): **emergency demand
response** events that slash usable capacity mid-horizon, and
**wholesale electricity prices** that should move the operator's
reserve price.  This module defines the event vocabulary:

* :class:`EdrShock` — a UPS- or PDU-level usable-capacity cut over a
  slot window (an EDR dispatch: "shed X% of load for the next hour").
* :class:`PriceSpike` — the reserve price tracks a wholesale price (a
  fixed level, or a trace sample scaled by the coupling factor) over a
  slot window.
* :class:`DeratingCascade` — staged utility-side capacity decay: the
  cut deepens by ``fraction_per_stage`` every ``stage_slots`` slots.

An :class:`EventSchedule` is an immutable, fully materialised replay of
a horizon's events — built once before slot 0 (deterministic, seedable,
or trace-driven via :class:`~repro.events.profile.EventProfile`) so a
crash/resume replays the remaining event window byte-identically.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.errors import ConfigurationError

__all__ = [
    "DeratingCascade",
    "EdrShock",
    "EventSchedule",
    "GridEvent",
    "PriceSpike",
    "wholesale_trace_from_file",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclasses.dataclass(frozen=True)
class GridEvent:
    """Base class: an exogenous event over ``[slot, end_slot)``.

    Attributes:
        slot: Onset slot (inclusive).
    """

    slot: int

    #: Machine name used in scenario specs and trace events.
    kind = "grid_event"

    def __post_init__(self) -> None:
        _require(self.slot >= 0, f"event slot must be >= 0, got {self.slot}")

    @property
    def end_slot(self) -> int:
        """First slot *after* the event window (exclusive bound)."""
        raise NotImplementedError

    def capacity_cut(self, slot: int) -> float:
        """Usable-capacity cut fraction in force at ``slot`` (0 = none)."""
        return 0.0

    @property
    def unit_key(self) -> str | None:
        """Target unit: a PDU id, or ``None`` for the facility UPS."""
        return None


@dataclasses.dataclass(frozen=True)
class EdrShock(GridEvent):
    """An emergency-demand-response dispatch: cut usable capacity now.

    Attributes:
        duration_slots: Window length in slots.
        fraction: Capacity cut in (0, 1) — usable capacity becomes
            ``base * (1 - fraction)`` for the window.
        unit_id: Target PDU id, or ``None`` for the facility UPS.
    """

    duration_slots: int = 12
    fraction: float = 0.3
    unit_id: str | None = None

    kind = "edr_shock"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.duration_slots >= 1,
            f"edr_shock duration_slots must be >= 1, got {self.duration_slots}",
        )
        _require(
            0.0 < self.fraction < 1.0,
            f"edr_shock fraction must be in (0, 1), got {self.fraction}",
        )

    @property
    def end_slot(self) -> int:
        return self.slot + self.duration_slots

    def capacity_cut(self, slot: int) -> float:
        if self.slot <= slot < self.end_slot:
            return self.fraction
        return 0.0

    @property
    def unit_key(self) -> str | None:
        return self.unit_id


@dataclasses.dataclass(frozen=True)
class PriceSpike(GridEvent):
    """A wholesale price excursion the reserve price must track.

    Attributes:
        duration_slots: Window length in slots.
        reserve_price: Reserve price ($/kWh) in force for the window.
            ``None`` means "track the schedule's wholesale trace":
            the reserve follows ``price_coupling * trace[slot]``.
    """

    duration_slots: int = 12
    reserve_price: float | None = None

    kind = "price_spike"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.duration_slots >= 1,
            f"price_spike duration_slots must be >= 1, got {self.duration_slots}",
        )
        if self.reserve_price is not None:
            _require(
                self.reserve_price >= 0.0,
                f"price_spike reserve_price must be >= 0, got {self.reserve_price}",
            )

    @property
    def end_slot(self) -> int:
        return self.slot + self.duration_slots


@dataclasses.dataclass(frozen=True)
class DeratingCascade(GridEvent):
    """Staged utility-side capacity decay (a worsening grid emergency).

    The cut starts at ``fraction_per_stage`` and deepens by another
    ``fraction_per_stage`` every ``stage_slots`` slots, ``stages``
    times; the window closes after the last stage and capacity is
    restored in full.

    Attributes:
        stages: Number of decay stages (>= 1).
        stage_slots: Slots per stage (>= 1).
        fraction_per_stage: Cut added at each stage; the terminal cut is
            ``stages * fraction_per_stage`` and must stay below 1.
        unit_id: Target PDU id, or ``None`` for the facility UPS.
    """

    stages: int = 3
    stage_slots: int = 5
    fraction_per_stage: float = 0.1
    unit_id: str | None = None

    kind = "derating_cascade"

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.stages >= 1,
            f"derating_cascade stages must be >= 1, got {self.stages}",
        )
        _require(
            self.stage_slots >= 1,
            f"derating_cascade stage_slots must be >= 1, got {self.stage_slots}",
        )
        _require(
            self.fraction_per_stage > 0.0,
            "derating_cascade fraction_per_stage must be > 0, "
            f"got {self.fraction_per_stage}",
        )
        _require(
            self.stages * self.fraction_per_stage < 1.0,
            "derating_cascade terminal cut stages * fraction_per_stage "
            f"must stay below 1, got {self.stages * self.fraction_per_stage}",
        )

    @property
    def end_slot(self) -> int:
        return self.slot + self.stages * self.stage_slots

    def capacity_cut(self, slot: int) -> float:
        if not self.slot <= slot < self.end_slot:
            return 0.0
        stage = 1 + (slot - self.slot) // self.stage_slots
        return min(stage, self.stages) * self.fraction_per_stage

    @property
    def unit_key(self) -> str | None:
        return self.unit_id


@dataclasses.dataclass(frozen=True)
class EventSchedule:
    """A fully materialised, immutable replay of a horizon's events.

    Attributes:
        events: The typed events, sorted by onset slot.
        wholesale_trace: Optional per-slot wholesale price trace
            ($/kWh); slots past the end hold the last value.
        price_coupling: Multiplier from wholesale price to reserve
            price when tracking the trace.
    """

    events: tuple[GridEvent, ...] = ()
    wholesale_trace: tuple[float, ...] | None = None
    price_coupling: float = 1.0

    def __post_init__(self) -> None:
        _require(
            self.price_coupling >= 0.0,
            f"price_coupling must be >= 0, got {self.price_coupling}",
        )
        if self.wholesale_trace is not None:
            _require(
                len(self.wholesale_trace) > 0,
                "wholesale_trace must not be empty",
            )
            for value in self.wholesale_trace:
                _require(
                    value >= 0.0,
                    f"wholesale_trace prices must be >= 0, got {value}",
                )

    def active(self, slot: int) -> tuple[GridEvent, ...]:
        """Events whose window covers ``slot``."""
        return tuple(e for e in self.events if e.slot <= slot < e.end_slot)

    def starting(self, slot: int) -> tuple[GridEvent, ...]:
        """Events whose window opens at ``slot``."""
        return tuple(e for e in self.events if e.slot == slot)

    def ending(self, slot: int) -> tuple[GridEvent, ...]:
        """Events whose window closed at the end of ``slot - 1``."""
        return tuple(e for e in self.events if e.end_slot == slot)

    def capacity_cuts(self, slot: int) -> dict[str | None, float]:
        """Per-unit capacity cuts in force at ``slot``.

        Keys are PDU ids, or ``None`` for the facility UPS; values are
        the deepest cut any active event imposes on that unit.
        """
        cuts: dict[str | None, float] = {}
        for event in self.events:
            fraction = event.capacity_cut(slot)
            if fraction > 0.0:
                key = event.unit_key
                cuts[key] = max(cuts.get(key, 0.0), fraction)
        return cuts

    def trace_price(self, slot: int) -> float | None:
        """Wholesale-coupled reserve price at ``slot`` (trace sample)."""
        trace = self.wholesale_trace
        if trace is None:
            return None
        return self.price_coupling * trace[min(slot, len(trace) - 1)]

    def reserve_price_at(self, slot: int) -> float | None:
        """Reserve price demanded by price events at ``slot``.

        A :class:`PriceSpike` with an explicit level pins the reserve
        there; one with ``reserve_price=None`` tracks the wholesale
        trace.  With a trace but no PriceSpike events at all, the
        reserve tracks the trace over the whole horizon (day-ahead
        coupling).  Returns ``None`` when no price event applies.
        """
        demands = []
        has_spikes = any(isinstance(e, PriceSpike) for e in self.events)
        for event in self.active(slot):
            if not isinstance(event, PriceSpike):
                continue
            if event.reserve_price is not None:
                demands.append(event.reserve_price)
            else:
                tracked = self.trace_price(slot)
                if tracked is not None:
                    demands.append(tracked)
        if not has_spikes:
            tracked = self.trace_price(slot)
            if tracked is not None:
                demands.append(tracked)
        if not demands:
            return None
        return max(demands)

    @property
    def max_end_slot(self) -> int:
        """First slot after the last event window (0 when empty)."""
        return max((e.end_slot for e in self.events), default=0)


def wholesale_trace_from_file(path: str | pathlib.Path) -> tuple[float, ...]:
    """Load a wholesale price trace ($/kWh per slot) from a file.

    Accepts either a JSON array of numbers or a plain-text file with
    one price per line (blank lines and ``#`` comments ignored).
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read wholesale trace {path}: {exc}"
        ) from exc
    stripped = text.lstrip()
    values: list[float] = []
    if stripped.startswith("["):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"wholesale trace {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, list):
            raise ConfigurationError(
                f"wholesale trace {path} must be a JSON array of numbers"
            )
        raw = payload
    else:
        raw = []
        for line in text.splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                raw.append(line)
    for item in raw:
        try:
            values.append(float(item))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"wholesale trace {path} has a non-numeric entry: {item!r}"
            ) from exc
    if not values:
        raise ConfigurationError(f"wholesale trace {path} is empty")
    trace = tuple(values)
    for value in trace:
        _require(
            value >= 0.0,
            f"wholesale trace {path} has a negative price: {value}",
        )
    return trace
