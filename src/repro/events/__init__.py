"""Grid-event survivability: EDR shocks, price coupling, shock absorption.

See :mod:`repro.events.types` for the event vocabulary,
:mod:`repro.events.profile` for the declarative scenario component, and
:mod:`repro.events.absorber` for the per-slot escalation ladder.
"""

from repro.events.absorber import ShockAbsorber
from repro.events.profile import EventProfile
from repro.events.types import (
    DeratingCascade,
    EdrShock,
    EventSchedule,
    GridEvent,
    PriceSpike,
    wholesale_trace_from_file,
)

__all__ = [
    "DeratingCascade",
    "EdrShock",
    "EventProfile",
    "EventSchedule",
    "GridEvent",
    "PriceSpike",
    "ShockAbsorber",
    "wholesale_trace_from_file",
]
