"""Fluent builder for custom facilities.

:func:`repro.sim.scenario.testbed_scenario` encodes the paper's Table I;
:class:`ScenarioBuilder` is for everything else — downstream users
composing their own facility: arbitrary PDUs, any mix of sprinting /
opportunistic / tiered / non-participating tenants, custom subscriptions
and price anchors, replayed traces.

Example::

    scenario = (
        ScenarioBuilder(seed=7)
        .add_pdu("row-a", oversubscription=1.05)
        .add_search_tenant("search", 200.0, "row-a")
        .add_wordcount_tenant("batch", 150.0, "row-a")
        .add_other_group("colo", 400.0, "row-a")
        .build()
    )
    result = run_simulation(scenario, slots=2000)
"""

from __future__ import annotations

import dataclasses

from repro.config import (
    DEFAULT_SEED,
    DEFAULT_SLOT_SECONDS,
    RACK_HEADROOM_FRACTION,
    make_rng,
    spawn_rngs,
)
from repro.economics.pricing import PriceSheet
from repro.errors import ConfigurationError
from repro.infrastructure.pdu import Pdu
from repro.infrastructure.rack import Rack
from repro.infrastructure.topology import PowerTopology
from repro.infrastructure.ups import Ups
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.sim.scenario import (
    PRICE_ANCHORS,
    Scenario,
    TenantSpec,
    _build_other_tenant,
    _build_participating_tenant,
    _default_strategy_factory,
)
from repro.tenants.bundled import BundledSprintingTenant, TierWorkload
from repro.tenants.calibration import calibrate_sprinting_cost
from repro.tenants.portfolio import TenantRack
from repro.tenants.tenant import Tenant
from repro.workloads.traces import GoogleStyleArrivalTrace

__all__ = ["ScenarioBuilder"]


@dataclasses.dataclass
class _PduPlan:
    pdu_id: str
    oversubscription: float
    leased_w: float = 0.0


class ScenarioBuilder:
    """Compose a custom facility tenant by tenant.

    Args:
        seed: Master seed for every stochastic component.
        slot_seconds: Market slot length.
        ups_oversubscription: Facility-level oversubscription ratio.
        rack_headroom_fraction: Rack PDU over-provisioning above each
            subscription.
        infrastructure_cost_per_watt: Shared-infrastructure capex for
            the operator's profit accounting.
        strategy_factory: ``kind -> BiddingStrategy``; defaults to the
            SpotDC linear-elastic strategy.
    """

    def __init__(
        self,
        seed: int = DEFAULT_SEED,
        slot_seconds: float = DEFAULT_SLOT_SECONDS,
        ups_oversubscription: float = 1.05,
        rack_headroom_fraction: float = RACK_HEADROOM_FRACTION,
        infrastructure_cost_per_watt: float = 25.0,
        strategy_factory=None,
    ) -> None:
        if ups_oversubscription < 1:
            raise ConfigurationError("ups_oversubscription must be >= 1")
        self.seed = seed
        self.slot_seconds = slot_seconds
        self.ups_oversubscription = ups_oversubscription
        self.rack_headroom_fraction = rack_headroom_fraction
        self.infrastructure_cost_per_watt = infrastructure_cost_per_watt
        self.strategy_factory = strategy_factory or _default_strategy_factory
        self._pdus: dict[str, _PduPlan] = {}
        self._pending: list = []  # (kind, payload) build instructions
        self._names: set[str] = set()
        self._rng = make_rng(seed)
        self._fault_profile = None
        self._telemetry = None
        self._prediction = None
        self._events = None
        self._clearing_deadline = None
        self._shards = 1

    def with_fault_profile(self, profile) -> "ScenarioBuilder":
        """Attach a :class:`repro.resilience.FaultProfile` to the run.

        The engine builds the fault injector from it automatically; the
        profile's own seed (or else the builder's seed) keys the fault
        streams, so identical seeds reproduce identical fault traces.
        """
        self._fault_profile = profile
        return self

    def with_telemetry(self, config) -> "ScenarioBuilder":
        """Attach a :class:`repro.telemetry.TelemetryConfig` to the run.

        Every engine built from the resulting scenario records the
        per-slot span trace and metrics, and (when the config names an
        ``out_dir``) exports the JSONL / Prometheus / summary artifacts.
        """
        self._telemetry = config
        return self

    def with_prediction(self, profile) -> "ScenarioBuilder":
        """Attach a :class:`repro.forecast.PredictionProfile` to the run.

        Every engine built from the resulting scenario forecasts spot
        capacity with the profile's signal and releases it at the
        profile's risk quantile.  ``None`` (the default) keeps the
        paper's rule — byte-identical traces to the pre-forecast engine.
        """
        self._prediction = profile
        return self

    def with_events(self, profile) -> "ScenarioBuilder":
        """Attach a :class:`repro.events.EventProfile` to the run.

        Every engine built from the resulting scenario resolves the
        profile's grid events — EDR capacity shocks, wholesale price
        coupling, derating cascades — through the shock-absorption
        ladder.  ``None`` (the default) keeps capacity and reserve price
        static — byte-identical traces to the pre-events engine.
        """
        self._events = profile
        return self

    def with_clearing_deadline(
        self, budget_s: "float | bool" = True
    ) -> "ScenarioBuilder":
        """Arm the wall-clock deadline guard on the clear phase.

        ``True`` derives the budget from the slot length
        (:func:`repro.recovery.deadline.default_budget_s`); a float sets
        it in seconds.  An over-deadline clear falls back down the
        always-safe ladder (reuse last price, else no spot) instead of
        stalling the slot loop.  Leave off for runs that pin
        byte-identical traces: wall time is nondeterministic.
        """
        if budget_s is not True and float(budget_s) <= 0:
            raise ConfigurationError(
                "clearing deadline budget must be positive"
            )
        self._clearing_deadline = budget_s
        return self

    def with_market_shards(self, shards: int) -> "ScenarioBuilder":
        """Partition per-PDU clearing into ``shards`` contiguous groups.

        Sharding never changes a number: traces and invoices stay
        byte-identical at any shard count (see
        :mod:`repro.core.sharding`); the knob only controls how the
        clearing work is decomposed and, with worker processes, where
        it runs.
        """
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ConfigurationError(
                f"shards must be an integer >= 1, got {shards!r}"
            )
        self._shards = shards
        return self

    # ------------------------------------------------------------------
    # Facility structure
    # ------------------------------------------------------------------

    def add_pdu(
        self, pdu_id: str, oversubscription: float = 1.05
    ) -> "ScenarioBuilder":
        """Declare a cluster PDU; capacity is derived from the tenants
        attached to it (leased / oversubscription)."""
        if pdu_id in self._pdus:
            raise ConfigurationError(f"duplicate PDU {pdu_id!r}")
        if oversubscription < 1:
            raise ConfigurationError("oversubscription must be >= 1")
        self._pdus[pdu_id] = _PduPlan(pdu_id, oversubscription)
        return self

    def _check_attachment(self, name: str, pdu_id: str, subscription_w: float):
        if name in self._names:
            raise ConfigurationError(f"duplicate tenant name {name!r}")
        if pdu_id not in self._pdus:
            raise ConfigurationError(
                f"tenant {name!r} references undeclared PDU {pdu_id!r}"
            )
        if subscription_w <= 0:
            raise ConfigurationError("subscription_w must be positive")
        self._names.add(name)
        self._pdus[pdu_id].leased_w += subscription_w

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------

    def _add_classed_tenant(
        self, name: str, workload: str, subscription_w: float, pdu_id: str
    ) -> "ScenarioBuilder":
        self._check_attachment(name, pdu_id, subscription_w)
        self._pending.append(
            ("classed", (name, workload, subscription_w, pdu_id))
        )
        return self

    def add_search_tenant(self, name, subscription_w, pdu_id):
        """A sprinting tenant running the web-search workload."""
        return self._add_classed_tenant(name, "search", subscription_w, pdu_id)

    def add_web_tenant(self, name, subscription_w, pdu_id):
        """A sprinting tenant running the web-serving workload."""
        return self._add_classed_tenant(name, "web", subscription_w, pdu_id)

    def add_wordcount_tenant(self, name, subscription_w, pdu_id):
        """An opportunistic tenant running Hadoop WordCount."""
        return self._add_classed_tenant(
            name, "wordcount", subscription_w, pdu_id
        )

    def add_terasort_tenant(self, name, subscription_w, pdu_id):
        """An opportunistic tenant running Hadoop TeraSort."""
        return self._add_classed_tenant(
            name, "terasort", subscription_w, pdu_id
        )

    def add_graph_tenant(self, name, subscription_w, pdu_id):
        """An opportunistic tenant running graph analytics."""
        return self._add_classed_tenant(name, "graph", subscription_w, pdu_id)

    def add_other_group(
        self, name, subscription_w, pdu_id, volatile: bool = False
    ) -> "ScenarioBuilder":
        """A non-participating tenant group replaying a colo power trace."""
        self._check_attachment(name, pdu_id, subscription_w)
        self._pending.append(("other", (name, subscription_w, pdu_id, volatile)))
        return self

    def add_tiered_tenant(
        self,
        name: str,
        tiers: list[tuple[float, str]],
        q_low: float | None = None,
        q_high: float | None = None,
        slo_ms: float = 100.0,
    ) -> "ScenarioBuilder":
        """A sprinting tenant whose racks form one tiered service.

        Implements the paper's bundled multi-rack bidding (§III-B3,
        Fig. 4): all tiers see the same request stream, end-to-end
        latency is the sum of tier latencies, and the bid is a joint
        demand vector between two shared price anchors.

        Args:
            name: Tenant name.
            tiers: ``(subscription_w, pdu_id)`` per tier, front to back.
            q_low: Shared low price anchor (default: search class).
            q_high: Shared maximum acceptable price.
            slo_ms: End-to-end latency SLO.
        """
        if len(tiers) < 2:
            raise ConfigurationError("a tiered tenant needs >= 2 tiers")
        if name in self._names:
            raise ConfigurationError(f"duplicate tenant name {name!r}")
        for subscription_w, pdu_id in tiers:
            if pdu_id not in self._pdus:
                raise ConfigurationError(
                    f"tenant {name!r} references undeclared PDU {pdu_id!r}"
                )
            if subscription_w <= 0:
                raise ConfigurationError("subscription_w must be positive")
        self._names.add(name)
        for subscription_w, pdu_id in tiers:
            self._pdus[pdu_id].leased_w += subscription_w
        self._pending.append(("tiered", (name, list(tiers), q_low, q_high, slo_ms)))
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _build_tiered(
        self, name, tiers, q_low, q_high, slo_ms, slots_per_day, rng
    ) -> Tenant:
        anchors = PRICE_ANCHORS["search"]
        q_low = anchors[0] if q_low is None else q_low
        q_high = anchors[1] if q_high is None else q_high
        tenant_racks = []
        front_model = None
        target_share = slo_ms * 0.9 / len(tiers)
        for i, (subscription_w, pdu_id) in enumerate(tiers):
            power = ServerPowerModel(
                0.45 * subscription_w, 1.25 * subscription_w
            )
            # Each tier is one stage of the pipeline, not a whole search
            # stack: lighter latency floor and tail so the summed
            # end-to-end latency lands in the SLO regime.
            latency_model = LatencyModel(
                power_model=power,
                mu_max_rps=1.4 * power.dynamic_range_w,
                d_min_ms=10.0,
                alpha=2.0,
                tail_const_ms_rps=2200.0,
            )
            if front_model is None:
                front_model = latency_model
            workload = TierWorkload(
                f"{name}/tier{i}", latency_model, target_ms=target_share
            )
            tenant_racks.append(
                TenantRack(
                    rack_id=f"rack:{name}/tier{i}",
                    pdu_id=pdu_id,
                    guaranteed_w=subscription_w,
                    max_spot_w=self.rack_headroom_fraction * subscription_w,
                    power_model=power,
                    workload=workload,
                )
            )
        trace = GoogleStyleArrivalTrace(
            max_rate_rps=front_model.mu_max_rps,
            base_fraction=0.36,
            diurnal_amplitude=0.11,
            slots_per_day=slots_per_day,
            phase=float(rng.uniform(0, 1)),
        )
        first_sub = tiers[0][0]
        cost_model = calibrate_sprinting_cost(
            front_model,
            guaranteed_w=first_sub,
            reference_rps=0.6 * front_model.mu_max_rps,
            max_spot_w=tenant_racks[0].useful_spot_w,
            target_marginal_per_kw_hour=anchors[2],
            slo_ms=slo_ms,
        )
        return BundledSprintingTenant(
            name,
            tenant_racks,
            arrival_trace=trace,
            cost_model=cost_model,
            q_low=q_low,
            q_high=q_high,
            slo_ms=slo_ms,
        )

    def to_spec(self) -> dict:
        """Emit this facility as a declarative scenario spec.

        The spec captures everything data can express: topology, time,
        demand (with ``"custom"`` standing in for a non-default
        ``strategy_factory``), supply, recovery, and — when
        representable — the fault profile and telemetry config.
        :meth:`build` routes through
        :func:`repro.scenarios.loader.build_scenario` with the live
        objects as overrides, so behaviour is exact even when the spec
        form is lossy (e.g. an explicit derating schedule).
        """
        from repro.scenarios.spec import normalize_spec
        from repro.sim.scenario import _default_strategy_factory

        tenants = []
        for kind, payload in self._pending:
            if kind == "classed":
                name, workload, subscription_w, pdu_id = payload
                tenants.append(
                    {
                        "name": name,
                        "workload": workload,
                        "subscription_w": subscription_w,
                        "pdu": pdu_id,
                    }
                )
            elif kind == "other":
                name, subscription_w, pdu_id, volatile = payload
                tenants.append(
                    {
                        "name": name,
                        "workload": "other",
                        "subscription_w": subscription_w,
                        "pdu": pdu_id,
                        "volatile": volatile,
                    }
                )
            else:
                name, tiers, q_low, q_high, slo_ms = payload
                tenants.append(
                    {
                        "name": name,
                        "workload": "tiered",
                        "tiers": [
                            {"subscription_w": w, "pdu": p} for w, p in tiers
                        ],
                        "q_low": q_low,
                        "q_high": q_high,
                        "slo_ms": slo_ms,
                    }
                )
        strategy = (
            "linear_elastic"
            if self.strategy_factory is _default_strategy_factory
            else "custom"
        )
        return normalize_spec(
            {
                "spec_version": 1,
                "name": "builder",
                "seed": self.seed,
                "topology": {
                    "pdus": [
                        {
                            "id": plan.pdu_id,
                            "oversubscription": plan.oversubscription,
                        }
                        for plan in self._pdus.values()
                    ],
                    "rack_headroom_fraction": self.rack_headroom_fraction,
                },
                "time": {"slot_seconds": self.slot_seconds},
                "demand": {"strategy": strategy, "tenants": tenants},
                "supply": {
                    "ups_oversubscription": self.ups_oversubscription,
                    "infrastructure_cost_per_watt": (
                        self.infrastructure_cost_per_watt
                    ),
                },
                "prediction": self._prediction_spec(),
                "events": self._events_spec(),
                "faults": self._faults_spec(),
                "telemetry": self._telemetry_spec(),
                "recovery": {"clearing_deadline_s": self._clearing_deadline},
                "market": {"shards": self._shards},
            }
        )

    def _faults_spec(self) -> "dict | None":
        """Spec form of the attached fault profile, when data can carry it."""
        profile = self._fault_profile
        if profile is None or profile.derating_events:
            return None
        fields = dataclasses.asdict(profile)
        fields.pop("derating_events")
        return {"profile": fields}

    def _prediction_spec(self) -> "dict | None":
        """Spec form of the attached prediction profile (fully data)."""
        profile = self._prediction
        if profile is None:
            return None
        return dataclasses.asdict(profile)

    def _events_spec(self) -> "dict | None":
        """Spec form of the attached event profile (fully data)."""
        profile = self._events
        if profile is None:
            return None
        return profile.to_spec()

    def _telemetry_spec(self) -> "dict | None":
        """Spec form of the attached telemetry config (scalar fields)."""
        config = self._telemetry
        if config is None:
            return None
        return {
            "enabled": config.enabled,
            "out_dir": None if config.out_dir is None else str(config.out_dir),
            "label": config.label,
            "export_trace": config.export_trace,
            "export_metrics": config.export_metrics,
            "export_summary": config.export_summary,
            "include_timings": config.include_timings,
        }

    def build(self) -> Scenario:
        """Assemble the scenario (validates the full facility).

        Thin wrapper: emits :meth:`to_spec` and feeds it to the spec
        loader, passing the live strategy/fault/telemetry objects as
        overrides so nothing is lost to the data form.  Spec validation
        (schema ``minItems`` on PDUs and tenants) supplies the
        empty-facility errors.
        """
        from repro.scenarios.loader import build_scenario

        return build_scenario(
            self.to_spec(),
            strategy_factory=self.strategy_factory,
            fault_profile=self._fault_profile,
            telemetry=self._telemetry,
        )

    def _assemble_scenario(self) -> Scenario:
        """The single assembly engine behind the builder and the loader.

        One RNG stream per tenant, spawned in declaration order from the
        builder seed — the invariant every byte-identical-trace test
        rests on.
        """
        if not self._pdus:
            raise ConfigurationError("declare at least one PDU")
        if not self._pending:
            raise ConfigurationError("add at least one tenant")
        slots_per_day = 24 * 3600 / self.slot_seconds
        rngs = spawn_rngs(self._rng, len(self._pending))

        tenants: list[Tenant] = []
        for (kind, payload), rng in zip(self._pending, rngs):
            if kind == "classed":
                name, workload, subscription_w, pdu_id = payload
                spec = TenantSpec(name, workload, subscription_w, 0)
                tenants.append(
                    _build_participating_tenant(
                        spec,
                        pdu_id,
                        self.rack_headroom_fraction,
                        self.strategy_factory,
                        jitter=0.0,
                        rng=rng,
                        slots_per_day=slots_per_day,
                    )
                )
            elif kind == "other":
                name, subscription_w, pdu_id, volatile = payload
                spec = TenantSpec(name, "other", subscription_w, 0)
                tenants.append(
                    _build_other_tenant(
                        spec, pdu_id, volatile, rng, slots_per_day
                    )
                )
            else:
                name, tiers, q_low, q_high, slo_ms = payload
                tenants.append(
                    self._build_tiered(
                        name, tiers, q_low, q_high, slo_ms, slots_per_day, rng
                    )
                )

        pdus = [
            Pdu(plan.pdu_id, plan.leased_w / plan.oversubscription)
            for plan in self._pdus.values()
            if plan.leased_w > 0
        ]
        if not pdus:
            raise ConfigurationError("every declared PDU is empty")
        ups_capacity = (
            sum(p.capacity_w for p in pdus) / self.ups_oversubscription
        )
        racks = [
            Rack(
                rack_id=track.rack_id,
                tenant_id=tenant.tenant_id,
                pdu_id=track.pdu_id,
                guaranteed_w=track.guaranteed_w,
                physical_w=track.guaranteed_w + track.max_spot_w,
            )
            for tenant in tenants
            for track in tenant.racks
        ]
        topology = PowerTopology.build(Ups("ups:0", ups_capacity), pdus, racks)
        infra_per_hour = (
            ups_capacity * self.infrastructure_cost_per_watt / (15.0 * 8760.0)
        )
        return Scenario(
            topology=topology,
            tenants=tenants,
            price_sheet=PriceSheet(),
            slot_seconds=self.slot_seconds,
            seed=self.seed,
            infrastructure_cost_per_hour=infra_per_hour,
            fault_profile=self._fault_profile,
            telemetry=self._telemetry,
            clearing_deadline_s=self._clearing_deadline,
            prediction=self._prediction,
            events=self._events,
            shards=self._shards,
        )
