"""Scenario builders: the paper's testbed (Table I) and its variants.

A :class:`Scenario` bundles everything one simulation run needs: the
power topology, the tenant roster with workloads and cost models, the
price sheet, and the slot length.  Builders:

* :func:`testbed_scenario` — the paper's two-PDU, nine-participating-
  tenant testbed (Table I: PDU capacities 715 W / 724 W, UPS 1370 W,
  5% oversubscription at both levels).
* :func:`scaled_scenario` — Fig. 18's hyper-scale variant: the Table I
  composition replicated with ±20% tenant-diversity jitter, up to 1,000
  tenants.

Every stochastic choice flows from a single seed.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.config import (
    DEFAULT_SEED,
    DEFAULT_SLOT_SECONDS,
    RACK_HEADROOM_FRACTION,
    make_rng,
    spawn_rngs,
)
from repro.economics.pricing import PriceSheet
from repro.errors import ConfigurationError
from repro.events.profile import EventProfile
from repro.forecast.profile import PredictionProfile
from repro.infrastructure.topology import PowerTopology
from repro.power.server import ServerPowerModel
from repro.resilience.profile import FaultProfile
from repro.sim.results import RackInfo, TenantInfo
from repro.telemetry.config import TelemetryConfig
from repro.tenants.bidding import BiddingStrategy, LinearElasticStrategy
from repro.tenants.calibration import (
    calibrate_opportunistic_cost,
    calibrate_sprinting_cost,
)
from repro.tenants.portfolio import TenantRack
from repro.tenants.tenant import (
    NonParticipatingTenant,
    OpportunisticTenant,
    SprintingTenant,
    Tenant,
)
from repro.workloads.base import (
    BatchWorkload,
    InteractiveWorkload,
    TracePowerWorkload,
)
from repro.workloads.graph import make_graph_workload
from repro.workloads.hadoop import make_terasort_workload, make_wordcount_workload
from repro.workloads.search import make_search_workload
from repro.workloads.traces import ColoPowerTrace, VolatilePowerTrace
from repro.workloads.web import make_web_workload

__all__ = [
    "TenantSpec",
    "Scenario",
    "TABLE1_SPECS",
    "PRICE_ANCHORS",
    "testbed_scenario",
    "scaled_scenario",
]

#: Power-model shape per tenant class: idle at 45% of the subscription;
#: peak above it by a class-dependent margin.  Opportunistic tenants
#: oversubscribe their guaranteed capacity far more aggressively than
#: performance-sensitive sprinting tenants (paper Section V-B1 /
#: Fig. 12c: "sprinting tenants receive less spot capacity in
#: percentage ... do not oversubscribe ... as aggressively").
_IDLE_FRACTION = 0.45
_PEAK_FRACTION = {
    "search": 1.25,
    "web": 1.25,
    "wordcount": 1.55,
    "terasort": 1.55,
    "graph": 1.55,
}

#: Price anchors per workload class, $/kW/h: (q_low, q_high, calibration
#: target for the marginal value).  Search bids highest, Web medium,
#: opportunistic lowest — capped at the amortised guaranteed rate
#: (~US$0.2/kW/h), per paper Section IV-C / Fig. 13a.
PRICE_ANCHORS = {
    "search": (0.20, 0.30, 0.28),
    "web": (0.14, 0.24, 0.19),
    "wordcount": (0.08, 0.205, 0.185),
    "terasort": (0.08, 0.205, 0.185),
    "graph": (0.08, 0.205, 0.175),
}


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One Table I row.

    Attributes:
        name: Tenant name (e.g. ``"Search-1"``).
        workload: Workload class key: ``"search"``, ``"web"``,
            ``"wordcount"``, ``"terasort"``, ``"graph"``, or ``"other"``.
        subscription_w: Guaranteed capacity subscription.
        pdu: Index of the PDU hosting the tenant's rack.
    """

    name: str
    workload: str
    subscription_w: float
    pdu: int


#: The paper's Table I, verbatim (aliases S-1..S-3, O-1..O-5 + Others).
TABLE1_SPECS: tuple[TenantSpec, ...] = (
    TenantSpec("Search-1", "search", 145.0, 0),
    TenantSpec("Web", "web", 115.0, 0),
    TenantSpec("Count-1", "wordcount", 125.0, 0),
    TenantSpec("Graph-1", "graph", 115.0, 0),
    TenantSpec("Other-1", "other", 250.0, 0),
    TenantSpec("Search-2", "search", 145.0, 1),
    TenantSpec("Count-2", "wordcount", 125.0, 1),
    TenantSpec("Sort", "terasort", 125.0, 1),
    TenantSpec("Graph-2", "graph", 115.0, 1),
    TenantSpec("Other-2", "other", 250.0, 1),
)


@dataclasses.dataclass
class Scenario:
    """A fully assembled simulation scenario.

    Attributes:
        topology: The facility.
        tenants: All tenants (participating and not).
        price_sheet: Published prices.
        slot_seconds: Market slot length.
        seed: Seed the scenario was built from.
        infrastructure_cost_per_hour: Operator's amortised shared-
            infrastructure cost (for profit accounting).
        fault_profile: Optional declarative fault configuration
            (:class:`repro.resilience.profile.FaultProfile`).  The
            engine builds a fault injector from it automatically unless
            an explicit ``fault_model`` is passed; the profile's own
            seed, or else the scenario seed, keys the fault streams.
        telemetry: Optional observability configuration
            (:class:`repro.telemetry.TelemetryConfig`).  ``None`` defers
            to the engine's ``telemetry`` argument or the process-wide
            default (:func:`repro.telemetry.default_config`).
        prediction: Optional declarative forecasting configuration
            (:class:`repro.forecast.PredictionProfile`).  The engine
            builds the forecasting signal and risk-aware release policy
            from it unless explicit ``signal``/``spot_predictor``
            arguments override; ``None`` keeps the paper's rule.
        events: Optional declarative grid-event configuration
            (:class:`repro.events.EventProfile`).  The engine builds a
            :class:`repro.events.ShockAbsorber` from it — EDR capacity
            shocks, wholesale price coupling, and the shock-absorption
            ladder; ``None`` keeps capacity and reserve price static.
        clearing_deadline_s: Wall-clock budget for the clear phase
            (:mod:`repro.recovery.deadline`).  ``None`` (default)
            disables the guard — wall time is nondeterministic, so runs
            pinning byte-identical traces leave it off.  Pass a budget
            in seconds, or ``True`` for the default derived from the
            slot length.
        shards: Shard count for per-PDU clearing
            (:mod:`repro.core.sharding`).  ``1`` (default) clears
            serially; any count produces byte-identical traces — the
            knob only changes how the clearing work is partitioned.
        spec: The normal-form declarative spec this scenario was
            assembled from (:mod:`repro.scenarios`), or ``None`` for
            scenarios constructed by hand.  Excluded from equality.
    """

    topology: PowerTopology
    tenants: list[Tenant]
    price_sheet: PriceSheet
    slot_seconds: float
    seed: int
    infrastructure_cost_per_hour: float
    fault_profile: "FaultProfile | None" = None
    telemetry: "TelemetryConfig | None" = None
    clearing_deadline_s: "float | bool | None" = None
    prediction: "PredictionProfile | None" = None
    events: "EventProfile | None" = None
    shards: int = 1
    spec: "dict | None" = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        # Catch bad run parameters at construction, not slots deep in
        # the engine: a NaN cost or zero-length slot silently corrupts
        # every downstream profit/throughput figure.
        if not _finite_number(self.slot_seconds) or self.slot_seconds <= 0:
            raise ConfigurationError(
                "slot_seconds must be a positive finite number, "
                f"got {self.slot_seconds!r}"
            )
        cost = self.infrastructure_cost_per_hour
        if not _finite_number(cost) or cost < 0:
            raise ConfigurationError(
                "infrastructure_cost_per_hour must be a finite number "
                f">= 0, got {cost!r}"
            )
        deadline = self.clearing_deadline_s
        if deadline is not None and deadline is not True:
            if not _finite_number(deadline) or deadline <= 0:
                raise ConfigurationError(
                    "clearing_deadline_s must be None, True, or a "
                    f"positive finite budget in seconds, got {deadline!r}"
                )
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ConfigurationError(
                f"shards must be an integer >= 1, got {self.shards!r}"
            )

    def prepare(self, slots: int) -> None:
        """Materialise every tenant's workload traces for a run."""
        rng = make_rng(self.seed)
        for tenant, tenant_rng in zip(self.tenants, spawn_rngs(rng, len(self.tenants))):
            tenant.prepare(slots, tenant_rng)

    def rack_infos(self) -> list[RackInfo]:
        """Static rack facts for the results layer."""
        infos = []
        for tenant in self.tenants:
            for rack in tenant.racks:
                infos.append(
                    RackInfo(
                        rack_id=rack.rack_id,
                        tenant_id=tenant.tenant_id,
                        pdu_id=rack.pdu_id,
                        guaranteed_w=rack.guaranteed_w,
                        metric=rack.workload.metric,
                    )
                )
        return infos

    def tenant_infos(self) -> list[TenantInfo]:
        """Static tenant facts for the results layer."""
        return [
            TenantInfo(
                tenant_id=t.tenant_id,
                kind=t.kind,
                rack_ids=tuple(r.rack_id for r in t.racks),
                guaranteed_w=t.total_guaranteed_w,
            )
            for t in self.tenants
        ]

    def participating_tenants(self) -> list[Tenant]:
        """Tenants that may bid in the spot market."""
        return [t for t in self.tenants if t.participates]

    def overprovisioned_w(self) -> float:
        """Total rack-level headroom the operator paid to over-provision."""
        return sum(
            rack.max_spot_w
            for tenant in self.tenants
            for rack in tenant.racks
            if tenant.participates
        )

    def total_guaranteed_w(self) -> float:
        """Facility-wide subscribed capacity."""
        return sum(t.total_guaranteed_w for t in self.tenants)


def _finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _reference_rate(workload: InteractiveWorkload, power_target_w: float) -> float:
    """Arrival rate at which the workload's desired power hits a target.

    Used to calibrate sprinting cost models at a representative
    "needs spot capacity" load.  Monotone bisection over the rate.
    """
    model = workload.latency_model
    lo, hi = 0.0, model.mu_max_rps * 0.98
    for _ in range(50):
        mid = (lo + hi) / 2
        if model.power_for_latency(workload.target_ms, mid) < power_target_w:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def _build_participating_tenant(
    spec: TenantSpec,
    pdu_id: str,
    rack_headroom_fraction: float,
    strategy_factory,
    jitter: float,
    rng: np.random.Generator,
    slots_per_day: float,
) -> Tenant:
    """Assemble one sprinting/opportunistic tenant from its Table I spec."""
    scale = 1.0 + (rng.uniform(-jitter, jitter) if jitter > 0 else 0.0)
    subscription = spec.subscription_w * scale
    power_model = ServerPowerModel(
        idle_w=_IDLE_FRACTION * subscription,
        peak_w=_PEAK_FRACTION[spec.workload] * subscription,
    )
    max_spot = rack_headroom_fraction * subscription
    rack_id = f"rack:{spec.name}"
    q_low, q_high, target_marginal = PRICE_ANCHORS[spec.workload]
    cost_scale = 1.0 + (rng.uniform(-jitter, jitter) if jitter > 0 else 0.0)
    target_marginal = target_marginal * cost_scale
    phase = float(rng.uniform(0, 1)) if jitter > 0 else {
        "search": 0.0, "web": 0.35, "wordcount": 0.2, "terasort": 0.5, "graph": 0.7,
    }.get(spec.workload, 0.0)

    if spec.workload in ("search", "web"):
        factory = make_search_workload if spec.workload == "search" else make_web_workload
        workload = factory(
            spec.name, power_model, phase=phase, slots_per_day=slots_per_day
        )
        tenant_rack = TenantRack(
            rack_id=rack_id,
            pdu_id=pdu_id,
            guaranteed_w=subscription,
            max_spot_w=max_spot,
            power_model=power_model,
            workload=workload,
        )
        reference_power = subscription + 0.5 * tenant_rack.useful_spot_w
        reference_rps = _reference_rate(workload, reference_power)
        cost_model = calibrate_sprinting_cost(
            workload.latency_model,
            guaranteed_w=subscription,
            reference_rps=reference_rps,
            max_spot_w=tenant_rack.useful_spot_w,
            target_marginal_per_kw_hour=target_marginal,
            slo_ms=workload.slo_ms,
        )
        return SprintingTenant(
            tenant_id=spec.name,
            racks=[tenant_rack],
            cost_models={rack_id: cost_model},
            q_low=q_low,
            q_high=q_high,
            strategy=strategy_factory("sprinting"),
        )

    batch_factories = {
        "wordcount": make_wordcount_workload,
        "terasort": make_terasort_workload,
        "graph": make_graph_workload,
    }
    workload = batch_factories[spec.workload](spec.name, power_model)
    tenant_rack = TenantRack(
        rack_id=rack_id,
        pdu_id=pdu_id,
        guaranteed_w=subscription,
        max_spot_w=max_spot,
        power_model=power_model,
        workload=workload,
    )
    assert isinstance(workload, BatchWorkload)
    cost_model = calibrate_opportunistic_cost(
        workload.throughput_model,
        guaranteed_w=subscription,
        max_spot_w=tenant_rack.useful_spot_w,
        target_marginal_per_kw_hour=target_marginal,
    )
    return OpportunisticTenant(
        tenant_id=spec.name,
        racks=[tenant_rack],
        cost_models={rack_id: cost_model},
        q_low=q_low,
        q_high=q_high,
        strategy=strategy_factory("opportunistic"),
    )


def _build_other_tenant(
    spec: TenantSpec,
    pdu_id: str,
    volatile: bool,
    rng: np.random.Generator,
    slots_per_day: float,
) -> Tenant:
    """Assemble one non-participating ("Other") tenant group."""
    if volatile:
        trace = VolatilePowerTrace(subscription_w=spec.subscription_w)
    else:
        trace = ColoPowerTrace(
            subscription_w=spec.subscription_w,
            slots_per_day=slots_per_day,
            phase=float(rng.uniform(0, 1)),
        )
    power_model = ServerPowerModel(
        idle_w=0.3 * spec.subscription_w, peak_w=spec.subscription_w
    )
    rack = TenantRack(
        rack_id=f"rack:{spec.name}",
        pdu_id=pdu_id,
        guaranteed_w=spec.subscription_w,
        max_spot_w=0.0,
        power_model=power_model,
        workload=TracePowerWorkload(spec.name, trace),
    )
    return NonParticipatingTenant(tenant_id=spec.name, racks=[rack])


def _default_strategy_factory(kind: str) -> BiddingStrategy:
    """SpotDC's default strategy for both tenant classes."""
    return LinearElasticStrategy()


def testbed_scenario(
    seed: int = DEFAULT_SEED,
    slot_seconds: float = DEFAULT_SLOT_SECONDS,
    pdu_oversubscription: float = 1.05,
    ups_oversubscription: float = 1.05,
    rack_headroom_fraction: float = RACK_HEADROOM_FRACTION,
    strategy_factory=None,
    volatile_other: bool = False,
    infrastructure_cost_per_watt: float = 25.0,
) -> Scenario:
    """Build the paper's Table I testbed.

    Defaults reproduce the paper's arithmetic: PDU#1 leases 750 W and is
    sized at 750/1.05 ≈ 715 W, PDU#2 760 W → ≈724 W, and the UPS at
    (715+724)/1.05 ≈ 1370 W.

    Args:
        seed: Master seed for every stochastic component.
        slot_seconds: Market slot length (paper: 120 s in the testbed).
        pdu_oversubscription: Leased/physical ratio at PDUs; sweeping
            this sweeps the available spot capacity (Figs. 14-15).
        ups_oversubscription: Sum-of-PDUs/UPS ratio.
        rack_headroom_fraction: Rack PDU over-provisioning above the
            subscription.
        strategy_factory: ``kind -> BiddingStrategy`` (kinds
            ``"sprinting"``/``"opportunistic"``); defaults to the SpotDC
            linear-elastic strategy for both.
        volatile_other: Use the high-volatility "Other" trace of the
            20-minute experiment (Fig. 10).
        infrastructure_cost_per_watt: Shared-infrastructure capex, $/W.
    """
    from repro.scenarios.loader import build_scenario
    from repro.scenarios.presets import testbed_spec

    return build_scenario(
        testbed_spec(
            seed=seed,
            slot_seconds=slot_seconds,
            pdu_oversubscription=pdu_oversubscription,
            ups_oversubscription=ups_oversubscription,
            rack_headroom_fraction=rack_headroom_fraction,
            volatile_other=volatile_other,
            infrastructure_cost_per_watt=infrastructure_cost_per_watt,
        ),
        strategy_factory=strategy_factory,
    )


def scaled_scenario(
    groups: int,
    seed: int = DEFAULT_SEED,
    slot_seconds: float = DEFAULT_SLOT_SECONDS,
    jitter: float = 0.2,
    pdu_oversubscription: float = 1.05,
    ups_oversubscription: float = 1.05,
    rack_headroom_fraction: float = RACK_HEADROOM_FRACTION,
    strategy_factory=None,
    infrastructure_cost_per_watt: float = 25.0,
) -> Scenario:
    """Build Fig. 18's scaled-up facility.

    Replicates the Table I composition ``groups`` times (two PDUs and
    eleven tenants per group — 1,000 tenants ≈ 91 groups), jittering
    each new tenant's subscription and cost model by up to ±``jitter``
    (paper: 20%) for diversity.  PDU and UPS capacities scale with the
    subscriptions.

    Args:
        groups: Number of Table I replicas.
        seed: Master seed.
        slot_seconds: Market slot length.
        jitter: Tenant-diversity scale (first group is exact Table I).
        pdu_oversubscription: Leased/physical ratio at each PDU.
        ups_oversubscription: Facility-level oversubscription.
        rack_headroom_fraction: Rack PDU over-provisioning.
        strategy_factory: As in :func:`testbed_scenario`.
        infrastructure_cost_per_watt: Shared-infrastructure capex, $/W.
    """
    from repro.scenarios.loader import build_scenario
    from repro.scenarios.presets import scaled_spec

    return build_scenario(
        scaled_spec(
            groups,
            seed=seed,
            slot_seconds=slot_seconds,
            jitter=jitter,
            pdu_oversubscription=pdu_oversubscription,
            ups_oversubscription=ups_oversubscription,
            rack_headroom_fraction=rack_headroom_fraction,
            infrastructure_cost_per_watt=infrastructure_cost_per_watt,
        ),
        strategy_factory=strategy_factory,
    )
