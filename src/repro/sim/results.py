"""Simulation result containers and the paper's summary metrics.

:class:`SimulationResult` wraps a finished run's telemetry and computes
the evaluation quantities the paper reports: tenants' performance
improvement over slots where they needed spot capacity (Fig. 12b),
their total-cost increase (Fig. 12a), spot-capacity usage relative to
subscriptions (Fig. 12c), market-price and utilization CDFs (Fig. 13),
and the operator's profit increase (the +9.7% headline).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.economics.profit import OperatorLedger
from repro.errors import SimulationError
from repro.infrastructure.emergencies import EmergencyLog
from repro.sim.metrics import MetricsCollector

__all__ = ["RackInfo", "TenantInfo", "SimulationResult"]


@dataclasses.dataclass(frozen=True)
class RackInfo:
    """Static facts about one rack, carried into results.

    Attributes:
        rack_id: Rack identifier.
        tenant_id: Owning tenant.
        pdu_id: Feeding PDU.
        guaranteed_w: Subscription.
        metric: ``"latency_ms"``, ``"throughput"``, or ``"power_w"``.
    """

    rack_id: str
    tenant_id: str
    pdu_id: str
    guaranteed_w: float
    metric: str


@dataclasses.dataclass(frozen=True)
class TenantInfo:
    """Static facts about one tenant."""

    tenant_id: str
    kind: str
    rack_ids: tuple[str, ...]
    guaranteed_w: float


class SimulationResult:
    """A finished run: telemetry plus derived evaluation metrics.

    Args:
        allocator_name: Which policy produced this run.
        slot_seconds: Slot duration.
        collector: The run's metrics.
        ledger: Operator accounting for the run.
        emergencies: Capacity-excursion log.
        racks: Static rack facts.
        tenants: Static tenant facts.
        energy_tariff_per_kwh: Tariff used for tenants' energy bills.
        guaranteed_rate_per_kw_hour: Rate used for subscription bills.
        ups_capacity_w: The facility's designed UPS capacity (for
            utilization normalisation); 0 if unknown.
        pdu_capacities_w: Physical capacity per PDU id.
        faults: The run's injected-fault log
            (:class:`repro.resilience.faults.FaultLog`), or ``None``
            when no fault model was active.
        control_actions: Degradation-control actions taken during the
            run (:class:`repro.resilience.degradation.ControlAction`).
        credit_notes: Settlement credits for revoked grants
            (:class:`repro.resilience.degradation.CreditNote`).
        quarantined_bids: Bundles rejected by the admission front door
            over the run, by tenant id (empty when admission never
            fired or was disabled).
    """

    def __init__(
        self,
        allocator_name: str,
        slot_seconds: float,
        collector: MetricsCollector,
        ledger: OperatorLedger,
        emergencies: EmergencyLog,
        racks: list[RackInfo],
        tenants: list[TenantInfo],
        energy_tariff_per_kwh: float,
        guaranteed_rate_per_kw_hour: float,
        ups_capacity_w: float = 0.0,
        pdu_capacities_w: dict[str, float] | None = None,
        faults=None,
        control_actions=(),
        credit_notes=(),
        quarantined_bids: dict[str, int] | None = None,
    ) -> None:
        self.allocator_name = allocator_name
        self.slot_seconds = slot_seconds
        self.collector = collector
        self.ledger = ledger
        self.emergencies = emergencies
        self.racks = {r.rack_id: r for r in racks}
        self.tenants = {t.tenant_id: t for t in tenants}
        self.energy_tariff_per_kwh = energy_tariff_per_kwh
        self.guaranteed_rate_per_kw_hour = guaranteed_rate_per_kw_hour
        self.ups_capacity_w = ups_capacity_w
        self.pdu_capacities_w = dict(pdu_capacities_w or {})
        self.faults = faults
        self.control_actions = tuple(control_actions)
        self.credit_notes = tuple(credit_notes)
        self.quarantined_bids = dict(quarantined_bids or {})
        #: The run's span/event trace (:class:`repro.telemetry.RunTrace`)
        #: when telemetry was enabled, else ``None``.  Set by the engine
        #: after construction — the trace closes after settlement events
        #: that themselves read this result.
        self.trace = None
        #: Paths of telemetry artifacts written for this run, in write
        #: order (empty when telemetry was disabled or kept in memory).
        self.telemetry_artifacts: list = []

    # ------------------------------------------------------------------
    # Basic dimensions
    # ------------------------------------------------------------------

    @property
    def slots(self) -> int:
        """Number of simulated slots."""
        return self.collector.slots

    @property
    def slot_hours(self) -> float:
        """Slot duration in hours."""
        return self.slot_seconds / 3600.0

    @property
    def duration_hours(self) -> float:
        """Total simulated duration in hours."""
        return self.slots * self.slot_hours

    def total_guaranteed_w(self) -> float:
        """Facility-wide subscribed capacity."""
        return sum(r.guaranteed_w for r in self.racks.values())

    # ------------------------------------------------------------------
    # Tenant money
    # ------------------------------------------------------------------

    def tenant_subscription_cost(self, tenant_id: str) -> float:
        """Guaranteed-capacity charge over the run, dollars."""
        info = self._tenant(tenant_id)
        return (
            info.guaranteed_w / 1000.0
        ) * self.guaranteed_rate_per_kw_hour * self.duration_hours

    def tenant_energy_cost(self, tenant_id: str) -> float:
        """Metered-energy charge over the run, dollars."""
        info = self._tenant(tenant_id)
        total_kwh = 0.0
        for rack_id in info.rack_ids:
            watts = self.collector.rack_power_array(rack_id)
            total_kwh += watts.sum() / 1000.0 * self.slot_hours
        return total_kwh * self.energy_tariff_per_kwh

    def tenant_spot_payment(self, tenant_id: str) -> float:
        """Spot-market payments over the run, dollars."""
        self._tenant(tenant_id)
        return float(self.collector.tenant_payment_array(tenant_id).sum())

    def tenant_total_cost(self, tenant_id: str) -> float:
        """Subscription + energy + spot payments, dollars (Fig. 12a)."""
        return (
            self.tenant_subscription_cost(tenant_id)
            + self.tenant_energy_cost(tenant_id)
            + self.tenant_spot_payment(tenant_id)
        )

    def tenant_cost_increase_vs(self, baseline: "SimulationResult", tenant_id: str) -> float:
        """Fractional total-cost increase over a baseline run."""
        base = baseline.tenant_total_cost(tenant_id)
        if base <= 0:
            raise SimulationError(f"baseline cost for {tenant_id} must be positive")
        return (self.tenant_total_cost(tenant_id) - base) / base

    # ------------------------------------------------------------------
    # Tenant performance
    # ------------------------------------------------------------------

    def rack_wanted_mask(self, rack_id: str) -> np.ndarray:
        """Slots in which this rack wanted spot capacity, this run."""
        return self.collector.rack_wanted_array(rack_id)

    def rack_performance_score(
        self, rack_id: str, mask: np.ndarray | None = None
    ) -> float:
        """Scalar performance over selected slots (higher is better).

        For latency racks this is the mean of inverse tail latency; for
        throughput racks the mean processing rate — the paper's "inverse
        of tail latency / job completion time" convention.
        """
        info = self.racks[rack_id]
        values = self.collector.rack_perf_array(rack_id)
        if mask is None:
            mask = np.ones(values.size, dtype=bool)
        if mask.shape != values.shape:
            raise SimulationError("mask length must match slot count")
        selected = values[mask]
        if selected.size == 0:
            return float("nan")
        if info.metric == "latency_ms":
            return float(np.mean(1.0 / np.maximum(selected, 1e-9)))
        return float(np.mean(selected))

    def tenant_performance_improvement_vs(
        self, baseline: "SimulationResult", tenant_id: str
    ) -> float:
        """Performance ratio vs a baseline over need-spot slots (Fig. 12b).

        Each run is averaged over *its own* need-spot slots, matching the
        paper's "averaged over all the time slots whenever tenants need
        spot capacity".  For interactive racks the masks coincide (the
        need is trace-driven); for batch racks they differ because spot
        capacity drains backlogs faster, and each run's mask is the set
        of slots where that run's tenant was actually constrained.
        """
        info = self._tenant(tenant_id)
        ratios = []
        for rack_id in info.rack_ids:
            my_mask = self.rack_wanted_mask(rack_id)
            base_mask = baseline.rack_wanted_mask(rack_id)
            if not base_mask.any():
                continue
            # A run that eliminated the need entirely scores over the
            # baseline's needy slots (it cannot be penalised for having
            # no constrained slots left).
            if not my_mask.any():
                my_mask = base_mask
            mine = self.rack_performance_score(rack_id, my_mask)
            theirs = baseline.rack_performance_score(rack_id, base_mask)
            if theirs > 0 and np.isfinite(mine) and np.isfinite(theirs):
                ratios.append(mine / theirs)
        if not ratios:
            return 1.0
        return float(np.mean(ratios))

    def tenant_slo_violation_rate(self, tenant_id: str) -> float:
        """Fraction of slots with an SLO violation (sprinting tenants)."""
        info = self._tenant(tenant_id)
        flags = [
            self.collector.rack_slo_violation_array(rack_id)
            for rack_id in info.rack_ids
        ]
        stacked = np.concatenate(flags)
        return float(stacked.mean()) if stacked.size else 0.0

    def tenant_spot_usage_fraction(self, tenant_id: str) -> tuple[float, float]:
        """(max, mean-over-wanted-slots) spot grant as a fraction of the
        tenant's subscription (Fig. 12c)."""
        info = self._tenant(tenant_id)
        max_frac = 0.0
        means = []
        for rack_id in info.rack_ids:
            granted = self.collector.rack_granted_array(rack_id)
            guaranteed = self.racks[rack_id].guaranteed_w
            if granted.size == 0 or guaranteed <= 0:
                continue
            frac = granted / guaranteed
            max_frac = max(max_frac, float(frac.max()))
            wanted = self.rack_wanted_mask(rack_id)
            if wanted.any():
                means.append(float(frac[wanted].mean()))
        return max_frac, float(np.mean(means)) if means else 0.0

    # ------------------------------------------------------------------
    # Operator / facility
    # ------------------------------------------------------------------

    def operator_profit_increase_vs(self, baseline: "SimulationResult") -> float:
        """Net-profit increase over a baseline run (the +9.7% headline)."""
        return self.ledger.profit_increase_vs(baseline.ledger)

    def total_spot_revenue(self) -> float:
        """Spot revenue over the run, dollars."""
        return float(self.collector.spot_revenue_array().sum())

    def average_spot_fraction(self) -> float:
        """Mean forecast spot capacity / total subscription.

        This is the paper's x-axis for Figs. 14-15 ("average amount of
        available spot capacity in percentage of guaranteed capacity"),
        measured from the per-slot UPS-level forecasts.
        """
        forecast = self.collector.forecast_ups_array()
        guaranteed = self.total_guaranteed_w()
        if forecast.size == 0 or guaranteed <= 0:
            return 0.0
        return float(forecast.mean() / guaranteed)

    def ups_power_series(self) -> np.ndarray:
        """Facility draw per slot, raw watts."""
        return self.collector.ups_power_array()

    def ups_utilization_series(self) -> np.ndarray:
        """Facility draw normalised to the designed UPS capacity (Fig. 13b).

        Raises:
            SimulationError: If the result carries no UPS capacity.
        """
        if self.ups_capacity_w <= 0:
            raise SimulationError(
                "result carries no UPS capacity; use ups_power_series()"
            )
        return self.collector.ups_power_array() / self.ups_capacity_w

    def price_series(self) -> np.ndarray:
        """Clearing price per slot (Fig. 10 bottom / Fig. 13a)."""
        return self.collector.price_array()

    def participating_tenant_ids(self) -> list[str]:
        """Tenants of sprinting/opportunistic kind, in insertion order."""
        return [
            t.tenant_id
            for t in self.tenants.values()
            if t.kind in ("sprinting", "opportunistic")
        ]

    def _tenant(self, tenant_id: str) -> TenantInfo:
        try:
            return self.tenants[tenant_id]
        except KeyError:
            raise SimulationError(f"unknown tenant {tenant_id!r}") from None
