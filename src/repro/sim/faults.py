"""Failure injection: communication losses in the market loop.

Paper §III-C, "Handling exceptions": *"In case of any communications
losses, SpotDC resumes to the default case of 'no spot capacity' for
affected tenants/racks."*  :class:`CommunicationFaultModel` injects
exactly those losses into a simulation:

* **bid loss** — a tenant's bid submission never reaches the operator;
  the tenant simply does not participate that slot;
* **grant loss** — the price broadcast / budget reset never reaches a
  tenant's racks; the operator revokes the grant (the rack PDU stays at
  the guaranteed budget) and the tenant is not billed.

Both failure modes are *safe by construction*: the default state is "no
spot capacity", so a loss can only forgo performance/revenue, never
overload the infrastructure.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CommunicationFaultModel", "FaultLog"]


@dataclasses.dataclass
class FaultLog:
    """Counts of injected communication losses.

    Attributes:
        lost_bids: Tenant-slots whose bid submission was dropped.
        lost_grants: Rack-slots whose grant/budget broadcast was dropped.
    """

    lost_bids: int = 0
    lost_grants: int = 0


class CommunicationFaultModel:
    """Random, independent per-slot communication losses.

    Args:
        bid_loss_probability: Per-tenant-per-slot probability the bid
            submission is lost.
        grant_loss_probability: Per-rack-per-slot probability the
            grant/budget broadcast is lost.
        rng: Random source (seeded by the caller for reproducibility).
    """

    def __init__(
        self,
        bid_loss_probability: float = 0.0,
        grant_loss_probability: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        for name, p in (
            ("bid_loss_probability", bid_loss_probability),
            ("grant_loss_probability", grant_loss_probability),
        ):
            if not 0 <= p <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if rng is None:
            raise ConfigurationError(
                "pass an explicit rng (reproducibility is not optional)"
            )
        self.bid_loss_probability = bid_loss_probability
        self.grant_loss_probability = grant_loss_probability
        self._rng = rng
        self.log = FaultLog()

    def bid_lost(self, slot: int, tenant_id: str) -> bool:
        """Whether this tenant's bid submission is lost this slot."""
        if self.bid_loss_probability <= 0:
            return False
        lost = bool(self._rng.random() < self.bid_loss_probability)
        if lost:
            self.log.lost_bids += 1
        return lost

    def grant_lost(self, slot: int, rack_id: str) -> bool:
        """Whether this rack's grant broadcast is lost this slot."""
        if self.grant_loss_probability <= 0:
            return False
        lost = bool(self._rng.random() < self.grant_loss_probability)
        if lost:
            self.log.lost_grants += 1
        return lost
