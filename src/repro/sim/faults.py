"""Legacy communication-fault model (thin adapter).

The original fault model of this package injected independent per-slot
Bernoulli bid/grant losses.  It has been superseded by the composable
:mod:`repro.resilience` framework — bursty losses, delayed grants,
meter faults, capacity deratings, and the degradation controller — and
:class:`CommunicationFaultModel` now survives only as a thin
:class:`~repro.resilience.faults.FaultInjector` subclass preserving the
historical constructor and the ``bid_lost``/``grant_lost`` call
contract.  New code should build a
:class:`~repro.resilience.profile.FaultProfile` (or compose
:class:`~repro.resilience.faults.FaultSource` objects) instead.

Paper §III-C, "Handling exceptions": *"In case of any communications
losses, SpotDC resumes to the default case of 'no spot capacity' for
affected tenants/racks."*
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.resilience.faults import BernoulliLoss, FaultInjector, FaultLog

__all__ = ["CommunicationFaultModel", "FaultLog"]


class CommunicationFaultModel(FaultInjector):
    """Random, independent per-slot communication losses.

    Args:
        bid_loss_probability: Per-tenant-per-slot probability the bid
            submission is lost.
        grant_loss_probability: Per-rack-per-slot probability the
            grant/budget broadcast is lost.
        rng: Random source shared by both channels in draw order (the
            historical contract — kept bit-compatible for seeded
            experiments).
        seed: Alternatively, a plain seed from which each channel
            derives its own stream.  Exactly one of ``rng``/``seed``
            must be provided.
    """

    def __init__(
        self,
        bid_loss_probability: float = 0.0,
        grant_loss_probability: float = 0.0,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> None:
        for name, p in (
            ("bid_loss_probability", bid_loss_probability),
            ("grant_loss_probability", grant_loss_probability),
        ):
            if not 0 <= p <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if rng is None and seed is None:
            raise ConfigurationError(
                "pass an explicit rng or seed (reproducibility is not optional)"
            )
        self.bid_loss_probability = float(bid_loss_probability)
        self.grant_loss_probability = float(grant_loss_probability)
        super().__init__(
            sources=(
                BernoulliLoss("bid", bid_loss_probability),
                BernoulliLoss("grant", grant_loss_probability),
            ),
            rng=rng,
            seed=seed if rng is None else None,
        )

    def grant_lost(self, slot: int, rack_id: str) -> bool:
        """Whether this rack's grant broadcast is lost this slot.

        Kept for callers of the historical API; the engine now asks
        :meth:`~repro.resilience.faults.FaultInjector.grant_fault`.
        """
        fault = self.grant_fault(slot, rack_id, 0.0)
        return fault is not None and fault.kind == "lost"
