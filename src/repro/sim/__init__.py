"""Time-slotted simulation: scenarios (Table I and scaled variants), the
engine running Algorithm 1, metrics collection, and result summaries.
"""

from repro.sim.builder import ScenarioBuilder
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.faults import CommunicationFaultModel, FaultLog
from repro.sim.metrics import MetricsCollector
from repro.sim.results import RackInfo, SimulationResult, TenantInfo
from repro.sim.scenario import (
    PRICE_ANCHORS,
    TABLE1_SPECS,
    Scenario,
    TenantSpec,
    scaled_scenario,
    testbed_scenario,
)

__all__ = [
    "MetricsCollector",
    "PRICE_ANCHORS",
    "RackInfo",
    "CommunicationFaultModel",
    "FaultLog",
    "Scenario",
    "ScenarioBuilder",
    "SimulationEngine",
    "SimulationResult",
    "TABLE1_SPECS",
    "TenantInfo",
    "TenantSpec",
    "run_simulation",
    "scaled_scenario",
    "testbed_scenario",
]
