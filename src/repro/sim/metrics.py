"""Per-slot metrics collection for simulation runs.

The collector is append-only during a run and finalises into the numpy
arrays that :class:`repro.sim.results.SimulationResult` exposes.  It
records exactly the quantities the paper's evaluation plots: market
price and grants (Fig. 10), per-rack performance (Fig. 11), payments and
energy (Fig. 12), PDU/UPS power (Fig. 13), and forecast spot capacity
(Figs. 14-15).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.workloads.base import SlotPerformance

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates one simulation run's telemetry."""

    def __init__(
        self,
        rack_ids: list[str],
        pdu_ids: list[str],
        tenant_ids: list[str],
    ) -> None:
        if not rack_ids or not pdu_ids or not tenant_ids:
            raise SimulationError("collector needs racks, PDUs and tenants")
        self.rack_ids = list(rack_ids)
        self.pdu_ids = list(pdu_ids)
        self.tenant_ids = list(tenant_ids)
        self._price: list[float] = []
        self._spot_granted: list[float] = []
        self._spot_revenue: list[float] = []
        self._forecast_ups: list[float] = []
        self._forecast_pdu_total: list[float] = []
        self._ups_power: list[float] = []
        self._pdu_power: dict[str, list[float]] = {p: [] for p in pdu_ids}
        self._pdu_price: dict[str, list[float]] = {p: [] for p in pdu_ids}
        self._rack_power: dict[str, list[float]] = {r: [] for r in rack_ids}
        self._rack_perf: dict[str, list[float]] = {r: [] for r in rack_ids}
        self._rack_wanted: dict[str, list[bool]] = {r: [] for r in rack_ids}
        self._rack_granted: dict[str, list[float]] = {r: [] for r in rack_ids}
        self._rack_slo_violation: dict[str, list[bool]] = {r: [] for r in rack_ids}
        self._tenant_payment: dict[str, list[float]] = {t: [] for t in tenant_ids}
        self._slots = 0

    @property
    def slots(self) -> int:
        """Slots recorded so far."""
        return self._slots

    def record_slot(
        self,
        price: float,
        grants_w: Mapping[str, float],
        spot_revenue: float,
        forecast_ups_w: float,
        forecast_pdu_total_w: float,
        ups_power_w: float,
        pdu_power_w: Mapping[str, float],
        rack_outcomes: Mapping[str, SlotPerformance],
        payments: Mapping[str, float],
        wanted_rack_ids: frozenset[str] | set[str] = frozenset(),
        pdu_prices: Mapping[str, float] | None = None,
    ) -> None:
        """Record everything observable about one completed slot.

        ``wanted_rack_ids`` is the participation signal — racks whose
        tenants requested spot capacity this slot, *independent of what
        they were granted* (a rack that received everything it asked for
        still "wanted" spot capacity; deriving the flag from the final
        budget would bias performance averages toward under-granted
        slots).
        """
        missing = set(self.rack_ids) - set(rack_outcomes)
        if missing:
            raise SimulationError(
                f"missing outcomes for racks {sorted(missing)[:5]}"
            )
        self._price.append(price)
        self._spot_granted.append(sum(grants_w.values()))
        self._spot_revenue.append(spot_revenue)
        self._forecast_ups.append(forecast_ups_w)
        self._forecast_pdu_total.append(forecast_pdu_total_w)
        self._ups_power.append(ups_power_w)
        pdu_prices = pdu_prices or {}
        for pdu_id in self.pdu_ids:
            self._pdu_power[pdu_id].append(pdu_power_w.get(pdu_id, 0.0))
            # Under locational pricing each PDU has its own price; under
            # a facility-wide price every PDU shares the headline price.
            self._pdu_price[pdu_id].append(pdu_prices.get(pdu_id, price))
        for rack_id in self.rack_ids:
            outcome = rack_outcomes[rack_id]
            self._rack_power[rack_id].append(outcome.power_w)
            self._rack_perf[rack_id].append(outcome.value)
            self._rack_wanted[rack_id].append(rack_id in wanted_rack_ids)
            self._rack_granted[rack_id].append(grants_w.get(rack_id, 0.0))
            self._rack_slo_violation[rack_id].append(outcome.slo_violated)
        for tenant_id in self.tenant_ids:
            self._tenant_payment[tenant_id].append(payments.get(tenant_id, 0.0))
        self._slots += 1

    # ------------------------------------------------------------------
    # Finalised arrays
    # ------------------------------------------------------------------

    def price_array(self) -> np.ndarray:
        """Clearing price per slot, $/kW/h."""
        return np.asarray(self._price)

    def spot_granted_array(self) -> np.ndarray:
        """Total spot capacity granted per slot, watts."""
        return np.asarray(self._spot_granted)

    def spot_revenue_array(self) -> np.ndarray:
        """Spot revenue per slot, dollars."""
        return np.asarray(self._spot_revenue)

    def forecast_ups_array(self) -> np.ndarray:
        """Forecast UPS spot capacity per slot, watts."""
        return np.asarray(self._forecast_ups)

    def forecast_pdu_total_array(self) -> np.ndarray:
        """Summed forecast PDU spot capacity per slot, watts."""
        return np.asarray(self._forecast_pdu_total)

    def ups_power_array(self) -> np.ndarray:
        """Facility draw per slot, watts."""
        return np.asarray(self._ups_power)

    def pdu_power_array(self, pdu_id: str) -> np.ndarray:
        """One PDU's draw per slot, watts."""
        return np.asarray(self._pdu_power[pdu_id])

    def pdu_price_array(self, pdu_id: str) -> np.ndarray:
        """One PDU's clearing price per slot, $/kW/h."""
        return np.asarray(self._pdu_price[pdu_id])

    def rack_power_array(self, rack_id: str) -> np.ndarray:
        """One rack's draw per slot, watts."""
        return np.asarray(self._rack_power[rack_id])

    def rack_perf_array(self, rack_id: str) -> np.ndarray:
        """One rack's performance metric per slot."""
        return np.asarray(self._rack_perf[rack_id])

    def rack_wanted_array(self, rack_id: str) -> np.ndarray:
        """Whether the rack wanted spot capacity, per slot."""
        return np.asarray(self._rack_wanted[rack_id], dtype=bool)

    def rack_granted_array(self, rack_id: str) -> np.ndarray:
        """Spot watts granted to the rack per slot."""
        return np.asarray(self._rack_granted[rack_id])

    def rack_slo_violation_array(self, rack_id: str) -> np.ndarray:
        """SLO-violation flags per slot (interactive racks only)."""
        return np.asarray(self._rack_slo_violation[rack_id], dtype=bool)

    def tenant_payment_array(self, tenant_id: str) -> np.ndarray:
        """Spot payments per slot for one tenant, dollars."""
        return np.asarray(self._tenant_payment[tenant_id])
