"""The time-slotted simulation engine (paper Algorithm 1, end to end).

Each slot ``t >= 1``:

1. tenants analyse their anticipated slot-``t`` workload and submit
   demand-function bids (during slot ``t-1`` in the paper's timing,
   Fig. 6);
2. the operator predicts the available spot capacity from current rack
   telemetry;
3. the allocator decides grants — the SpotDC market clears a uniform
   price; baselines allocate by their own policy;
4. rack budgets are reset through the intelligent rack PDUs and tenants
   execute the slot under their enforced budgets;
5. telemetry, emergencies, billing, and operator accounting are
   recorded.

Slot 0 runs without spot capacity (bids for a slot are placed during
the *previous* slot, and there is none).

Under fault injection (:mod:`repro.resilience`) the loop gains three
stages: capacity-derating transitions are applied to the live topology
before budgets are final, delayed (stale) grant broadcasts from earlier
slots land on racks with no fresh grant, and the
:class:`~repro.resilience.degradation.DegradationController` then
projects every PDU/UPS constraint from hardened (true) telemetry and
revokes grants — cheapest clearing value first — until the slot is
provably safe, crediting revoked energy in settlement.

Batch and daemon mode share one slot-step function
--------------------------------------------------

The loop is exposed as three phases so :mod:`repro.daemon` can drive
the *same* per-slot market work from an asyncio service:

* :meth:`SimulationEngine.begin_run` — validate, adopt a checkpoint (or
  prepare the scenario fresh), and build the picklable run state;
* :meth:`SimulationEngine.step_slot` — process exactly one slot,
  optionally against externally submitted bid bundles;
* :meth:`SimulationEngine.finish_run` — restore the topology and build
  the :class:`~repro.sim.results.SimulationResult`.

:meth:`SimulationEngine.run` is the batch driver: ``begin_run`` →
``step_slot`` per slot → ``finish_run``.  The run state lives on the
engine, so a recovery checkpoint taken between slots captures it
automatically and a resumed run continues mid-loop.
"""

from __future__ import annotations

from repro.config import MarketParameters
from repro.core.market import Allocator, SlotMarketRecord, SpotDCAllocator
from repro.economics.profit import OperatorLedger
from repro.errors import RecoveryError, SimulationError
from repro.events.absorber import ShockAbsorber
from repro.forecast.release import RiskAwareReleasePolicy
from repro.forecast.signals import CurrentDrawSignal, Signal
from repro.infrastructure.emergencies import EmergencyLog
from repro.infrastructure.monitor import PowerMonitor
from repro.prediction.price import EwmaPricePredictor, PricePredictor
from repro.prediction.spot import SpotCapacityPredictor
from repro.recovery.checkpoint import load_checkpoint, save_checkpoint
from repro.recovery.deadline import (
    ClearingDeadlineGuard,
    build_fallback_record,
    default_budget_s,
)
from repro.resilience.degradation import DegradationController, revoke_and_rebill
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.telemetry import Telemetry, default_config
from repro.telemetry.registry import DEFAULT_PRICE_BUCKETS, DEFAULT_WATTS_BUCKETS
from repro.workloads.base import SlotPerformance

__all__ = ["SimulationEngine", "run_simulation"]


class _RunState:
    """Loop state shared by every slot of one run.

    Everything the next :meth:`SimulationEngine.step_slot` call depends
    on that is not already an engine attribute lives here — metric
    handles (created once, in a fixed order, so the exported registry
    is identical to the historical single-function loop) and the
    "seen" cursors for incremental fault/degradation event bridging.
    The object is plain data and picklable: it is checkpointed with the
    engine, so a resumed run continues mid-loop without re-deriving
    anything.
    """

    def __init__(
        self,
        *,
        slots,
        checkpoint_every,
        checkpoint_dir,
        participants,
        slot_seconds,
        total_guaranteed,
        m_slots,
        m_bids,
        m_grants,
        m_revoked_w,
        m_revenue,
        m_emergencies,
        g_price,
        g_ups,
        h_price,
        h_granted,
        g_forecast_error,
        m_forecast_slots,
        m_forecast_covered,
        guaranteed_by_rack,
        faults_seen,
        actions_seen,
        credits_seen,
        emergencies_seen,
        next_slot,
    ) -> None:
        self.slots = slots
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.participants = participants
        self.slot_seconds = slot_seconds
        self.slot_hours = slot_seconds / 3600.0
        self.total_guaranteed = total_guaranteed
        self.m_slots = m_slots
        self.m_bids = m_bids
        self.m_grants = m_grants
        self.m_revoked_w = m_revoked_w
        self.m_revenue = m_revenue
        self.m_emergencies = m_emergencies
        self.g_price = g_price
        self.g_ups = g_ups
        self.h_price = h_price
        self.h_granted = h_granted
        self.g_forecast_error = g_forecast_error
        self.m_forecast_slots = m_forecast_slots
        self.m_forecast_covered = m_forecast_covered
        self.guaranteed_by_rack = guaranteed_by_rack
        # Released-forecast accuracy accumulators (summary JSON).
        self.forecast_error_sum = 0.0
        self.forecast_abs_error_sum = 0.0
        self.forecast_covered = 0
        self.forecast_slots = 0
        self.faults_seen = faults_seen
        self.actions_seen = actions_seen
        self.credits_seen = credits_seen
        self.emergencies_seen = emergencies_seen
        self.next_slot = next_slot


class SimulationEngine:
    """Runs one scenario under one allocation policy.

    Args:
        scenario: The facility, tenants, and prices.
        allocator: Slot-level allocation policy (default: SpotDC).
        spot_predictor: Operator-side spot-capacity predictor.  Legacy
            scalar-rule entry point: wrapped into a
            :class:`~repro.forecast.signals.CurrentDrawSignal` with the
            same factor/margin, so existing callers keep identical
            numbers.  Prefer ``signal`` (or a scenario ``prediction``
            block) for anything beyond the paper's rule.
        signal: Forecasting :class:`~repro.forecast.signals.Signal`
            producing the per-slot banded forecast.  ``None`` falls back
            to ``spot_predictor``, then the scenario's ``prediction``
            profile, then the paper's default
            :class:`~repro.forecast.signals.CurrentDrawSignal`.
        release_policy: :class:`~repro.forecast.release.RiskAwareReleasePolicy`
            choosing the band quantile actually released to the market;
            ``None`` falls back to the scenario's ``prediction`` profile
            (when the signal also came from it) and then to releasing
            the point forecast — the paper's behaviour.
        price_predictor: Tenant-side market-price forecaster handed to
            bidding strategies (only strategies that use forecasts react
            to it).  ``None`` disables forecasting.
        history_slots: Monitor history retention.
        reference_window: Rolling window (slots) for the conservative
            per-rack reference power used in spot-capacity prediction.
        constraint_provider: Optional zero-argument callable returning
            this slot's extra capacity constraints (phase balance, heat
            density) — evaluated after telemetry is current, e.g.
            ``lambda: phase_assignment.phase_headroom()`` or
            ``lambda: zone_constraints(zones, scenario.topology)``.
        enforcement: Optional
            :class:`repro.infrastructure.enforcement.EnforcementPolicy`
            policing budget overdraws: warned racks escalate to an
            involuntary spot-market bar (paper §III-C).
        fault_model: Optional
            :class:`repro.resilience.faults.FaultInjector` (the legacy
            :class:`repro.sim.faults.CommunicationFaultModel` is a thin
            subclass and still works) injecting bid/grant communication
            losses, delayed grants, meter faults, and capacity deratings
            (paper §III-C "Handling exceptions").  ``None`` falls back
            to the scenario's own ``fault_profile``, if any.
        degradation: Excursion containment under faults.  ``None``
            (default) auto-creates a
            :class:`~repro.resilience.degradation.DegradationController`
            whenever a fault model is active; pass ``False`` to disable
            containment (e.g. to demonstrate the unprotected excursion),
            or a pre-built controller to tune its margins.
        telemetry: Observability for the run: a
            :class:`repro.telemetry.TelemetryConfig`, a pre-built
            :class:`repro.telemetry.Telemetry`, or ``None`` to fall back
            to the scenario's ``telemetry`` config and then the
            process-wide default (:func:`repro.telemetry.default_config`)
            — disabled when neither is set.  When enabled, every slot is
            traced as one span tree (``predict -> bid_collect -> clear ->
            grant -> enforce -> settle``), faults/revocations/invoices
            become events, and artifacts are exported at the end of the
            run if the config names an output directory.
    """

    def __init__(
        self,
        scenario: Scenario,
        allocator: Allocator | None = None,
        spot_predictor: SpotCapacityPredictor | None = None,
        signal: Signal | None = None,
        release_policy: RiskAwareReleasePolicy | None = None,
        price_predictor: PricePredictor | None = None,
        history_slots: int = 200_000,
        reference_window: int = 5,
        constraint_provider=None,
        fault_model=None,
        enforcement=None,
        degradation=None,
        telemetry=None,
    ) -> None:
        self.scenario = scenario
        if telemetry is None:
            telemetry = getattr(scenario, "telemetry", None)
        if telemetry is None:
            telemetry = default_config()
        self.telemetry = Telemetry.resolve(telemetry)
        self.reference_window = reference_window
        self.constraint_provider = constraint_provider
        if fault_model is None:
            profile = getattr(scenario, "fault_profile", None)
            if profile is not None:
                seed = profile.seed if profile.seed is not None else scenario.seed
                fault_model = profile.build(seed=seed)
        self.fault_model = fault_model
        self.enforcement = enforcement
        events = getattr(scenario, "events", None)
        self.shock_absorber = ShockAbsorber(events) if events is not None else None
        if degradation is None:
            # Grid events need the §III-C revocation ladder (rung 3 of
            # the shock absorber) even in fault-free runs.
            degradation = (
                DegradationController()
                if fault_model is not None or self.shock_absorber is not None
                else None
            )
        elif degradation is False:
            degradation = None
        self.degradation = degradation
        self.allocator = allocator or SpotDCAllocator(
            params=MarketParameters(slot_seconds=scenario.slot_seconds),
            shards=getattr(scenario, "shards", 1),
        )
        # Exactly one forecast-producing code path: every entry point —
        # the legacy spot_predictor arg, a scenario `prediction` block,
        # or nothing at all — resolves to a Signal + release policy.
        prediction = getattr(scenario, "prediction", None)
        if signal is None:
            if spot_predictor is not None:
                signal = CurrentDrawSignal(
                    under_prediction_factor=spot_predictor.under_prediction_factor,
                    safety_margin_fraction=spot_predictor.safety_margin_fraction,
                    window=reference_window,
                )
            elif prediction is not None:
                signal = prediction.build_signal()
                if release_policy is None:
                    release_policy = prediction.build_policy()
            else:
                signal = CurrentDrawSignal(window=reference_window)
        self.signal = signal
        self.release_policy = release_policy or RiskAwareReleasePolicy()
        self.spot_predictor = spot_predictor or getattr(
            signal, "predictor", None
        ) or SpotCapacityPredictor()
        self.price_predictor = price_predictor
        self.monitor = PowerMonitor(scenario.topology, history_slots=history_slots)
        self.emergencies = EmergencyLog()
        self.ledger = OperatorLedger(
            price_sheet=scenario.price_sheet,
            overprovisioned_w=(
                scenario.overprovisioned_w()
                if self.allocator.provisions_spot
                else 0.0
            ),
            infrastructure_cost_per_hour=scenario.infrastructure_cost_per_hour,
        )
        rack_infos = scenario.rack_infos()
        tenant_infos = scenario.tenant_infos()
        self.collector = MetricsCollector(
            rack_ids=[r.rack_id for r in rack_infos],
            pdu_ids=list(scenario.topology.pdus),
            tenant_ids=[t.tenant_id for t in tenant_infos],
        )
        self._rack_infos = rack_infos
        self._tenant_infos = tenant_infos
        # Delayed (stale) grant broadcasts awaiting delivery:
        # delivery slot -> [(rack_id, grant_w), ...].
        self._pending_stale: dict[int, list[tuple[str, float]]] = {}
        # Last *successfully cleared* market price, feeding the deadline
        # guard's reuse_price fallback.  A fallback slot does not update
        # it: falling back twice in a row must not compound.
        self._last_price: float | None = None
        # Bundles quarantined by the admission front door, per tenant.
        self._quarantined_by_tenant: dict[str, int] = {}
        # Active run state; set by begin_run, cleared by finish_run.
        self._run: _RunState | None = None
        deadline = getattr(scenario, "clearing_deadline_s", None)
        if deadline is None or deadline is False:
            self.deadline_guard = None
        else:
            budget = (
                default_budget_s(scenario.slot_seconds)
                if deadline is True
                else float(deadline)
            )
            self.deadline_guard = ClearingDeadlineGuard(budget)

    def begin_run(
        self,
        slots: int,
        *,
        checkpoint_every: int | None = None,
        checkpoint_dir=None,
        resume_from=None,
    ) -> int:
        """Prepare (or resume) a run and return the first slot to process.

        On a fresh run the scenario is prepared (tenant RNGs re-seeded)
        and the run state built from scratch; with ``resume_from`` the
        engine's entire state — including the mid-loop run state — is
        replaced by the checkpointed one and the first unprocessed slot
        is returned.  Callers then drive :meth:`step_slot` for every
        slot in ``range(start, slots)`` and finish with
        :meth:`finish_run`.

        Raises:
            RecoveryError: On a bad checkpoint, a horizon mismatch, or a
                checkpoint that already covers the full horizon.
            SimulationError: On invalid ``slots``/checkpoint arguments.
        """
        if slots <= 0:
            raise SimulationError("slots must be positive")
        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise SimulationError("checkpoint_every must be positive")
            if checkpoint_dir is None:
                raise SimulationError(
                    "checkpoint_every requires a checkpoint_dir"
                )
        start_slot = 0
        if resume_from is not None:
            envelope = load_checkpoint(resume_from)
            if envelope["horizon"] != slots:
                raise RecoveryError(
                    f"checkpoint was written for a {envelope['horizon']}-slot "
                    f"run, cannot resume a {slots}-slot one"
                )
            start_slot = envelope["slot"] + 1
            if start_slot >= slots:
                raise RecoveryError(
                    f"checkpoint already covers slot {envelope['slot']} of "
                    f"{slots}; nothing left to resume"
                )
            # Adopt the checkpointed engine wholesale: every attribute —
            # RNG streams, monitor history, ledger, telemetry, fault and
            # degradation state — continues exactly where the crashed
            # run left it.
            self.__dict__.update(envelope["engine"].__dict__)
        scenario = self.scenario
        if resume_from is None:
            # prepare() re-seeds tenant RNG streams for a fresh run; on
            # resume the checkpointed streams are mid-sequence and must
            # not be reset.
            scenario.prepare(slots)
        participants = scenario.participating_tenants()
        slot_seconds = scenario.slot_seconds
        total_guaranteed = scenario.total_guaranteed_w()
        injector = self.fault_model

        registry = self.telemetry.registry
        absorber = self.shock_absorber
        if absorber is not None:
            if resume_from is None:
                # The schedule is materialised once, up front: a crash
                # mid-event resumes the checkpointed absorber (with the
                # already-built schedule) and replays the remaining
                # event window byte-identically.
                absorber.prepare(scenario.seed, slots)
            absorber.bind_telemetry(registry)
        # On a fresh run the "seen" cursors are all zero; on resume they
        # pick up the checkpointed logs' lengths so "new since" deltas
        # stay correct.
        self._run = _RunState(
            slots=slots,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            participants=participants,
            slot_seconds=slot_seconds,
            total_guaranteed=total_guaranteed,
            m_slots=registry.counter("slots_total"),
            m_bids=registry.counter("bids_total"),
            m_grants=registry.counter("grants_total"),
            m_revoked_w=registry.counter("revoked_watts_total"),
            m_revenue=registry.counter("spot_revenue_dollars_total"),
            m_emergencies=registry.counter("emergencies_total"),
            g_price=registry.gauge("clearing_price_dollars_per_kwh"),
            g_ups=registry.gauge("ups_power_watts"),
            h_price=registry.histogram(
                "clearing_price", buckets=DEFAULT_PRICE_BUCKETS
            ),
            h_granted=registry.histogram(
                "slot_granted_watts", buckets=DEFAULT_WATTS_BUCKETS
            ),
            g_forecast_error=registry.gauge("forecast_error_watts"),
            m_forecast_slots=registry.counter("forecast_slots_total"),
            m_forecast_covered=registry.counter("forecast_covered_total"),
            guaranteed_by_rack={
                rack_id: rack.guaranteed_w
                for rack_id, rack in scenario.topology.racks.items()
            },
            faults_seen=len(injector.log) if injector is not None else 0,
            actions_seen=(
                len(self.degradation.actions)
                if self.degradation is not None
                else 0
            ),
            credits_seen=(
                len(self.degradation.credits)
                if self.degradation is not None
                else 0
            ),
            emergencies_seen=len(self.emergencies.events),
            next_slot=start_slot,
        )
        if resume_from is not None and injector is not None:
            # The crash that killed the previous run must not re-fire on
            # the resumed one (later scheduled crashes still do).
            injector.disarm_next_crash(start_slot)
        return start_slot

    def _require_run(self) -> _RunState:
        if self._run is None:
            raise SimulationError(
                "no active run: call begin_run() before "
                "step_slot()/finish_run()"
            )
        return self._run

    def step_slot(
        self, slot: int, submitted_bids=None
    ) -> SlotMarketRecord:
        """Process exactly one slot and return its market record.

        Args:
            slot: The slot to process (the caller drives slots in
                order; :attr:`_RunState.next_slot` tracks progress).
            submitted_bids: Externally submitted
                :class:`~repro.core.bids.TenantBid` bundles for this
                slot (daemon mode).  ``None`` (batch mode) solicits bids
                from the scenario's tenants instead.  Either way the
                bundles pass the admission front door and duplicate
                deliveries are absorbed before clearing.

        Raises:
            OperatorCrash: When an armed
                :class:`~repro.resilience.faults.CrashFault` fires — at
                the very top of the slot, before any state is touched,
                so a resume replays the slot from scratch.
        """
        st = self._require_run()
        scenario = self.scenario
        topology = scenario.topology
        participants = st.participants
        slot_seconds = st.slot_seconds
        slot_hours = st.slot_hours
        injector = self.fault_model
        absorber = self.shock_absorber
        tel = self.telemetry
        tracer = tel.tracer
        registry = tel.registry

        if injector is not None:
            # An armed CrashFault kills the run *between* slots — after
            # the previous slot's checkpoint, before this slot touches
            # any state — so a resume replays slot `slot` from scratch.
            injector.check_crash(slot)
        with tracer.span("slot", slot=slot) as slot_span:
            topology.clear_all_spot_budgets()
            if absorber is not None:
                # Grid events resolve at the top of the slot — capacity
                # cuts land before the forecast reads the topology, and
                # the reserve price is pinned before the clear.
                absorber.on_slot_start(slot, topology, self.allocator, tracer)

            requesting = frozenset(
                rack_id
                for tenant in participants
                for rack_id in tenant.needed_spot_w(slot)
            )
            with tracer.span("predict", slot=slot) as predict_span:
                # The signal reads the operator's *metered* telemetry —
                # under meter faults its references can be wrong, which
                # is exactly the hazard the degradation controller
                # exists to contain.  The release policy then picks how
                # much of the banded forecast the market may sell.
                banded = self.signal.forecast_slot(
                    topology, requesting, self.monitor, slot
                )
                release_policy = self.release_policy
                if absorber is not None:
                    # Rung 2: tighten the release quantile while a
                    # capacity event is in force.
                    release_policy = absorber.effective_release_policy(
                        release_policy
                    )
                forecast = release_policy.release(banded, topology)
                if absorber is not None:
                    forecast = absorber.adjust_release(forecast)
                predict_span.set(
                    requesting_racks=len(requesting),
                    ups_spot_w=forecast.ups_spot_w,
                    pdu_spot_w=forecast.total_pdu_spot_w,
                )
                if banded.has_band or self.release_policy.risk_quantile is not None:
                    # Band diagnostics only for non-default signals:
                    # default-path traces must stay byte-identical to the
                    # pre-subsystem engine.
                    band = banded.ups_quantiles
                    predict_span.set(
                        signal=self.signal.name,
                        risk_quantile=self.release_policy.risk_quantile,
                        band_low_ups_w=band[0] if band else banded.point.ups_spot_w,
                        band_high_ups_w=band[-1] if band else banded.point.ups_spot_w,
                    )
            if slot == 0:
                # Bids for a slot are placed during the previous slot, and
                # slot 0 has none: the market phases are structural no-ops
                # but still traced, so every slot carries every phase.
                record = _empty_record()
                with tracer.span("bid_collect", slot=slot) as span:
                    span.set(tenants=0, racks_bid=0)
                with tracer.span("clear", slot=slot) as span:
                    span.set(price=0.0, granted_racks=0, granted_w=0.0)
            else:
                predicted_price = (
                    self.price_predictor.predict() if self.price_predictor else None
                )
                extra_constraints = (
                    tuple(self.constraint_provider())
                    if self.constraint_provider is not None
                    else ()
                )
                # Bid-submission losses: affected tenants sit the slot out
                # (the default "no spot capacity" state — §III-C).
                active = participants
                if injector is not None:
                    active = [
                        tenant
                        for tenant in participants
                        if not injector.bid_lost(slot, tenant.tenant_id)
                    ]
                # Duplicate-delivery faults: the tenant's bundle arrives
                # twice; the market's idempotent ingestion absorbs the
                # extra copy, so settlement is provably unchanged.
                duplicated = None
                if injector is not None and injector.has_duplicate_sources:
                    duplicated = frozenset(
                        tenant.tenant_id
                        for tenant in active
                        if injector.bid_duplicated(slot, tenant.tenant_id)
                    )
                guard = self.deadline_guard
                started = guard.start() if guard is not None else 0.0
                record = self.allocator.allocate(
                    slot,
                    active,
                    forecast,
                    slot_seconds,
                    predicted_price,
                    extra_constraints=extra_constraints,
                    tracer=tracer,
                    submitted_bids=submitted_bids,
                    duplicated=duplicated,
                )
                if guard is not None and guard.over_budget(
                    guard.elapsed(started)
                ):
                    # The clear blew its wall-clock budget: discard its
                    # outcome for the always-safe fallback.  The event
                    # deliberately omits the measured elapsed time —
                    # traces stay deterministic for a given seed.
                    record, fallback = build_fallback_record(
                        record,
                        self._last_price,
                        forecast,
                        slot_seconds,
                        extra_constraints=extra_constraints,
                    )
                    guard.record_hit(fallback)
                    tracer.event(
                        "deadline.exceeded",
                        slot=slot,
                        budget_s=guard.budget_s,
                        fallback=fallback,
                    )
                    registry.counter(
                        "clearing_deadline_hits_total", {"fallback": fallback}
                    ).inc()
                else:
                    self._last_price = record.result.price
                for q in record.quarantined:
                    self._quarantined_by_tenant[q.tenant_id] = (
                        self._quarantined_by_tenant.get(q.tenant_id, 0) + 1
                    )
                    registry.counter(
                        "bids_quarantined_total", {"reason": q.reason}
                    ).inc()

            with tracer.span("grant", slot=slot) as grant_span:
                lost_grants = delayed_grants = barred_grants = 0
                stale_applied = 0
                if slot > 0:
                    if injector is not None:
                        # Grant-delivery faults: a lost broadcast reverts
                        # the rack to "no spot capacity" for good; a
                        # delayed one additionally lands as a *stale*
                        # budget k slots later.  Either way the cleared
                        # slot is unbilled.
                        undelivered: set[str] = set()
                        for rack_id, grant in record.result.grants_w.items():
                            if grant <= 0:
                                continue
                            fault = injector.grant_fault(slot, rack_id, grant)
                            if fault is None:
                                continue
                            undelivered.add(rack_id)
                            if fault.kind == "delayed":
                                delayed_grants += 1
                                self._pending_stale.setdefault(
                                    slot + fault.delay_slots, []
                                ).append((rack_id, grant))
                            else:
                                lost_grants += 1
                        record = revoke_and_rebill(
                            record, undelivered, slot_seconds
                        )
                    if self.enforcement is not None:
                        barred = self.enforcement.barred_racks(slot)
                        revoked = {
                            rack_id
                            for rack_id in record.result.grants_w
                            if rack_id in barred
                        }
                        barred_grants = len(revoked)
                        record = revoke_and_rebill(record, revoked, slot_seconds)
                    for rack_id, grant in record.result.grants_w.items():
                        topology.rack(rack_id).set_spot_budget(grant)

                if injector is not None:
                    # Infrastructure derating events change the live
                    # PDU/UPS capacities before the slot executes.
                    injector.apply_capacity_faults(slot, topology)
                    # Stale (delayed) grant broadcasts land now: the rack
                    # PDU obeys the late budget reset unless a fresh grant
                    # already arrived this slot.  The stale budget was
                    # never cleared for this slot and is never billed — it
                    # is a hazard for the degradation controller, not a
                    # market outcome.
                    for rack_id, grant_w in self._pending_stale.pop(slot, []):
                        rack = topology.rack(rack_id)
                        if rack.spot_budget_w > 0:
                            continue
                        rack.set_spot_budget(min(grant_w, rack.max_spot_w))
                        stale_applied += 1
                        injector.log.record(
                            slot, "stale_grant_applied", rack_id, grant_w
                        )
                    st.faults_seen = self._emit_fault_events(
                        injector, st.faults_seen, slot
                    )
                grant_span.set(
                    granted_racks=sum(
                        1 for g in record.result.grants_w.values() if g > 0
                    ),
                    granted_w=record.result.total_granted_w,
                    lost_grants=lost_grants,
                    delayed_grants=delayed_grants,
                    barred_racks=barred_grants,
                    stale_grants_applied=stale_applied,
                )

            with tracer.span("enforce", slot=slot) as enforce_span:
                revoked_this_slot = 0
                revoked_watts = 0.0
                if self.degradation is not None:
                    true_references = {
                        rack_id: self.monitor.rack_recent_true_max_w(
                            rack_id, self.reference_window
                        )
                        for rack_id in topology.racks
                    }
                    record = self.degradation.enforce(
                        topology,
                        record,
                        slot,
                        slot_seconds,
                        true_reference_w=true_references,
                    )
                    new_actions = list(
                        self.degradation.new_actions(st.actions_seen)
                    )
                    for action in new_actions:
                        tracer.event(
                            f"degradation.{action.kind}",
                            slot=slot,
                            level=action.level,
                            unit_id=action.unit_id,
                            rack_id=action.rack_id,
                            watts=action.watts,
                        )
                        if action.kind == "revoke":
                            revoked_this_slot += 1
                            revoked_watts += action.watts
                    st.actions_seen = len(self.degradation.actions)
                    if absorber is not None:
                        # Rung 4 bookkeeping: emergency caps fired during
                        # an event window put the unit in a zero-release
                        # warning state until the window closes.
                        absorber.note_control_actions(slot, new_actions)
                    for note in self.degradation.new_credits(st.credits_seen):
                        tracer.event(
                            "settlement.credit",
                            slot=slot,
                            tenant=note.tenant_id,
                            rack_id=note.rack_id,
                            watts=note.watts,
                            dollars=note.dollars,
                            reason=note.reason,
                        )
                    st.credits_seen = len(self.degradation.credits)

                # Tenants execute the slot under their enforced budgets —
                # as set on the rack PDUs, which is where lost/stale
                # deliveries and degradation-control revocations are
                # visible.
                outcomes: dict[str, SlotPerformance] = {}
                for tenant in scenario.tenants:
                    budgets = {
                        rack.rack_id: topology.rack(rack.rack_id).budget_w
                        for rack in tenant.racks
                    }
                    outcomes.update(
                        tenant.execute_slot(slot, budgets, slot_seconds)
                    )

                rack_power = {rid: perf.power_w for rid, perf in outcomes.items()}
                metered = None
                if injector is not None and injector.has_meter_faults:
                    metered = {
                        rid: injector.metered_power_w(slot, rid, watts)
                        for rid, watts in rack_power.items()
                    }
                    st.faults_seen = self._emit_fault_events(
                        injector, st.faults_seen, slot
                    )
                self.monitor.record_slot(rack_power, metered)
                emergencies = self.emergencies.scan(topology, slot)
                for emergency in emergencies:
                    tracer.event(
                        "emergency",
                        slot=slot,
                        level=emergency.level,
                        unit_id=emergency.unit_id,
                        overload_w=emergency.overload_w,
                    )
                st.m_emergencies.inc(len(emergencies))
                st.emergencies_seen += len(emergencies)
                if absorber is not None:
                    # EDR compliance (invariant 2): close watch windows
                    # whose draw is back under the shocked capacity.
                    absorber.observe_draw(slot, topology)
                if self.enforcement is not None:
                    self.enforcement.review(topology, slot)
                st.m_revoked_w.inc(revoked_watts)
                enforce_span.set(
                    revoked_grants=revoked_this_slot,
                    revoked_w=revoked_watts,
                    emergencies=len(emergencies),
                )

            with tracer.span("settle", slot=slot) as settle_span:
                spot_revenue = (
                    record.result.revenue_for_slot(slot_seconds)
                    if self.allocator.charges_tenants
                    else 0.0
                )
                payments = (
                    record.payments if self.allocator.charges_tenants else {}
                )
                self.ledger.record_slot(
                    slot_hours=slot_hours,
                    guaranteed_w=st.total_guaranteed,
                    spot_revenue=spot_revenue,
                    metered_energy_w=self.monitor.latest_ups_power_w(),
                )
                self.collector.record_slot(
                    price=record.result.price,
                    grants_w=record.result.grants_w,
                    spot_revenue=spot_revenue,
                    forecast_ups_w=forecast.ups_spot_w,
                    forecast_pdu_total_w=forecast.total_pdu_spot_w,
                    ups_power_w=self.monitor.latest_ups_power_w(),
                    pdu_power_w={
                        p: self.monitor.latest_pdu_power_w(p)
                        for p in topology.pdus
                    },
                    rack_outcomes=outcomes,
                    payments=payments,
                    wanted_rack_ids=requesting,
                    pdu_prices=record.result.pdu_prices,
                )
                if slot > 0:
                    # Released-forecast accuracy: compare what the
                    # market was offered against the headroom that
                    # actually materialised (usable UPS capacity minus
                    # the non-spot draws the predictor's references
                    # stand in for).  Registry-only — traces untouched.
                    nonspot_w = sum(
                        min(perf.power_w, st.guaranteed_by_rack[rid])
                        for rid, perf in outcomes.items()
                    )
                    realized_w = max(
                        0.0,
                        topology.ups.capacity_w * banded.usable_fraction
                        - nonspot_w,
                    )
                    error_w = forecast.ups_spot_w - realized_w
                    st.g_forecast_error.set(error_w)
                    st.m_forecast_slots.inc()
                    st.forecast_slots += 1
                    st.forecast_error_sum += error_w
                    st.forecast_abs_error_sum += abs(error_w)
                    if forecast.ups_spot_w <= realized_w + 1e-9:
                        st.m_forecast_covered.inc()
                        st.forecast_covered += 1
                if self.price_predictor is not None:
                    self.price_predictor.observe(record.result.price)
                settle_span.set(
                    price=record.result.price,
                    spot_revenue=spot_revenue,
                    billed_tenants=sum(1 for v in payments.values() if v > 0),
                )

            st.m_slots.inc()
            st.m_bids.inc(len(record.bids))
            st.m_grants.inc(
                sum(1 for g in record.result.grants_w.values() if g > 0)
            )
            st.m_revenue.inc(spot_revenue)
            st.g_price.set(record.result.price)
            st.g_ups.set(self.monitor.latest_ups_power_w())
            st.h_price.observe(record.result.price)
            st.h_granted.observe(record.result.total_granted_w)
            slot_span.set(
                price=record.result.price,
                granted_w=record.result.total_granted_w,
            )
        # Checkpoint only *between* fully processed slots (the slot
        # span above has closed), so a restore replays the next slot
        # from its very first action.  The final slot needs none: the
        # run is about to finish.
        st.next_slot = slot + 1
        if (
            st.checkpoint_every is not None
            and (slot + 1) % st.checkpoint_every == 0
            and slot + 1 < st.slots
        ):
            save_checkpoint(self, st.checkpoint_dir, slot, st.slots)
        return record

    def finish_run(self) -> SimulationResult:
        """Restore the topology and build the finished result."""
        st = self._require_run()
        scenario = self.scenario
        topology = scenario.topology
        injector = self.fault_model
        tel = self.telemetry

        # Leave the topology as designed: any derating still in force at
        # the end of the run is transient state, not facility structure.
        topology.restore_all_capacities()
        if self.shock_absorber is not None:
            # Rung-1 unwind: the market leaves the run on the scenario's
            # own reserve price even if an event outlived the horizon.
            self.shock_absorber.finish(self.allocator)

        result = SimulationResult(
            allocator_name=self.allocator.name,
            slot_seconds=st.slot_seconds,
            collector=self.collector,
            ledger=self.ledger,
            emergencies=self.emergencies,
            racks=self._rack_infos,
            tenants=self._tenant_infos,
            energy_tariff_per_kwh=scenario.price_sheet.energy_tariff_per_kwh,
            guaranteed_rate_per_kw_hour=scenario.price_sheet.guaranteed_rate_per_kw_hour,
            ups_capacity_w=topology.ups.base_capacity_w,
            pdu_capacities_w={
                pdu_id: pdu.base_capacity_w
                for pdu_id, pdu in topology.pdus.items()
            },
            faults=injector.log if injector is not None else None,
            control_actions=(
                self.degradation.actions if self.degradation is not None else ()
            ),
            credit_notes=(
                self.degradation.credits if self.degradation is not None else ()
            ),
            quarantined_bids=dict(self._quarantined_by_tenant),
        )
        result.events_report = (
            self.shock_absorber.summary()
            if self.shock_absorber is not None
            else None
        )
        if tel.enabled:
            self._emit_settlement_events(result, tel.tracer)
            result.trace = tel.finish(
                fallback_label=self.allocator.name,
                summary_data=self._summary_data(result, st),
            )
            result.telemetry_artifacts = list(tel.config.manifest)
        self._run = None
        return result

    def run(
        self,
        slots: int,
        *,
        checkpoint_every: int | None = None,
        checkpoint_dir=None,
        resume_from=None,
    ) -> SimulationResult:
        """Simulate ``slots`` slots and return the finished result.

        The batch driver over the shared slot-step machinery:
        :meth:`begin_run`, then :meth:`step_slot` for every remaining
        slot, then :meth:`finish_run`.

        Args:
            slots: Run length (the horizon).
            checkpoint_every: Write a recovery checkpoint after every K
                completed slots (requires ``checkpoint_dir``).
            checkpoint_dir: Directory for checkpoint files.
            resume_from: Path to a checkpoint written by an earlier run
                of the *same* scenario and horizon.  The engine's entire
                state is replaced by the checkpointed one and the loop
                restarts at the first unprocessed slot; the finished
                result (and trace, when telemetry is on) is identical to
                the uninterrupted run's.

        Raises:
            RecoveryError: On a bad checkpoint, a horizon mismatch, or a
                checkpoint that already covers the full horizon.
            OperatorCrash: When an armed
                :class:`~repro.resilience.faults.CrashFault` fires.
        """
        start_slot = self.begin_run(
            slots,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
        )
        for slot in range(start_slot, slots):
            self.step_slot(slot)
        return self.finish_run()

    def _emit_fault_events(self, injector, seen: int, slot: int) -> int:
        """Bridge newly logged faults into telemetry events."""
        tracer = self.telemetry.tracer
        if not tracer.enabled:
            return len(injector.log)
        registry = self.telemetry.registry
        for fault in injector.log.tail(seen):
            tracer.event(
                f"fault.{fault.kind}",
                slot=slot,
                unit_id=fault.unit_id,
                magnitude=fault.magnitude,
            )
            registry.counter("faults_total", {"kind": fault.kind}).inc()
        return len(injector.log)

    def _emit_settlement_events(self, result: SimulationResult, tracer) -> None:
        """One run-scoped invoice event per tenant (audit trail)."""
        from repro.economics.settlement import build_all_invoices

        for invoice in build_all_invoices(result):
            tracer.event(
                "settlement.invoice",
                slot=-1,
                tenant=invoice.tenant_id,
                subscription=invoice.subscription_charge,
                energy=invoice.energy_charge,
                spot=invoice.spot_charge,
                credited=invoice.spot_credit,
                quarantined=invoice.quarantined_bids,
                total=invoice.total,
            )

    def _summary_data(self, result: SimulationResult, st: _RunState) -> dict:
        """The deterministic summary payload for the JSON exporter."""
        prices = result.price_series()
        emergencies = st.emergencies_seen
        forecast_slots = st.forecast_slots
        data = {
            "allocator": result.allocator_name,
            "slots": result.slots,
            "slot_seconds": result.slot_seconds,
            "seed": self.scenario.seed,
            "tenants": len(result.tenants),
            "racks": len(result.racks),
            "mean_price": float(prices.mean()) if prices.size else 0.0,
            "max_price": float(prices.max()) if prices.size else 0.0,
            "total_spot_revenue": result.total_spot_revenue(),
            "net_profit": result.ledger.net_profit,
            "mean_ups_power_w": float(result.ups_power_series().mean()),
            "emergencies": emergencies,
            "faults_injected": (
                result.faults.count() if result.faults is not None else 0
            ),
            "revocations": (
                self.degradation.revocation_count()
                if self.degradation is not None
                else 0
            ),
            "credited_dollars": (
                self.degradation.credited_dollars()
                if self.degradation is not None
                else 0.0
            ),
            "quarantined_bids": sum(self._quarantined_by_tenant.values()),
            "deadline_hits": (
                sum(self.deadline_guard.hits.values())
                if self.deadline_guard is not None
                else 0
            ),
            "signal": self.signal.name,
            "forecast_mean_error_w": (
                st.forecast_error_sum / forecast_slots if forecast_slots else 0.0
            ),
            "forecast_mean_abs_error_w": (
                st.forecast_abs_error_sum / forecast_slots if forecast_slots else 0.0
            ),
            "forecast_coverage": (
                st.forecast_covered / forecast_slots if forecast_slots else 0.0
            ),
        }
        if self.release_policy.risk_quantile is not None:
            data["risk_quantile"] = self.release_policy.risk_quantile
        if self.shock_absorber is not None:
            # Only event-coupled runs carry the block: default-path
            # summaries must stay byte-identical to the pre-events engine.
            data["grid_events"] = self.shock_absorber.summary()
        return data


def _empty_record() -> SlotMarketRecord:
    from repro.core.allocation import AllocationResult

    return SlotMarketRecord(result=AllocationResult.empty(), bids=(), payments={})


def run_simulation(
    scenario: Scenario,
    slots: int,
    allocator: Allocator | None = None,
    spot_predictor: SpotCapacityPredictor | None = None,
    signal: Signal | None = None,
    release_policy: RiskAwareReleasePolicy | None = None,
    use_price_forecasting: bool = False,
    fault_profile=None,
    telemetry=None,
    checkpoint_every: int | None = None,
    checkpoint_dir=None,
    resume_from=None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`.

    Args:
        scenario: Scenario to run (freshly built — workload state is
            consumed by a run).
        slots: Number of slots.
        allocator: Allocation policy (default SpotDC market).
        spot_predictor: Operator-side predictor (default: exact, no
            under-prediction).  Legacy scalar entry point; see
            :class:`SimulationEngine` for the resolution order against
            ``signal`` and the scenario's ``prediction`` profile.
        signal: Forecasting signal (:mod:`repro.forecast.signals`).
        release_policy: Risk-aware release policy
            (:mod:`repro.forecast.release`).
        use_price_forecasting: Provide tenants an EWMA price forecast
            (strategies that ignore forecasts are unaffected).
        fault_profile: Optional
            :class:`repro.resilience.FaultProfile` to inject faults from
            (overrides the scenario's own profile).
        telemetry: Optional :class:`repro.telemetry.TelemetryConfig` (or
            prebuilt :class:`repro.telemetry.Telemetry`); ``None`` defers
            to the scenario's config, then the process-wide default.
        checkpoint_every: Write a recovery checkpoint after every K
            completed slots (requires ``checkpoint_dir``); see
            :mod:`repro.recovery.checkpoint`.
        checkpoint_dir: Directory for checkpoint files.
        resume_from: Resume a crashed run from this checkpoint path; the
            scenario/allocator arguments still shape the engine that is
            *replaced* by the checkpointed state, so pass the same ones.
    """
    fault_model = None
    if fault_profile is not None:
        seed = (
            fault_profile.seed if fault_profile.seed is not None else scenario.seed
        )
        fault_model = fault_profile.build(seed=seed)
    engine = SimulationEngine(
        scenario,
        allocator=allocator,
        spot_predictor=spot_predictor,
        signal=signal,
        release_policy=release_policy,
        price_predictor=EwmaPricePredictor() if use_price_forecasting else None,
        fault_model=fault_model,
        telemetry=telemetry,
    )
    return engine.run(
        slots,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        resume_from=resume_from,
    )
