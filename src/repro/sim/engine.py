"""The time-slotted simulation engine (paper Algorithm 1, end to end).

Each slot ``t >= 1``:

1. tenants analyse their anticipated slot-``t`` workload and submit
   demand-function bids (during slot ``t-1`` in the paper's timing,
   Fig. 6);
2. the operator predicts the available spot capacity from current rack
   telemetry;
3. the allocator decides grants — the SpotDC market clears a uniform
   price; baselines allocate by their own policy;
4. rack budgets are reset through the intelligent rack PDUs and tenants
   execute the slot under their enforced budgets;
5. telemetry, emergencies, billing, and operator accounting are
   recorded.

Slot 0 runs without spot capacity (bids for a slot are placed during
the *previous* slot, and there is none).
"""

from __future__ import annotations

from repro.config import MarketParameters
from repro.core.market import Allocator, SlotMarketRecord, SpotDCAllocator
from repro.economics.profit import OperatorLedger
from repro.errors import SimulationError
from repro.infrastructure.emergencies import EmergencyLog
from repro.infrastructure.monitor import PowerMonitor
from repro.prediction.price import EwmaPricePredictor, PricePredictor
from repro.prediction.spot import SpotCapacityForecast, SpotCapacityPredictor
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.workloads.base import SlotPerformance

__all__ = ["SimulationEngine", "run_simulation"]


class SimulationEngine:
    """Runs one scenario under one allocation policy.

    Args:
        scenario: The facility, tenants, and prices.
        allocator: Slot-level allocation policy (default: SpotDC).
        spot_predictor: Operator-side spot-capacity predictor.
        price_predictor: Tenant-side market-price forecaster handed to
            bidding strategies (only strategies that use forecasts react
            to it).  ``None`` disables forecasting.
        history_slots: Monitor history retention.
        reference_window: Rolling window (slots) for the conservative
            per-rack reference power used in spot-capacity prediction.
        constraint_provider: Optional zero-argument callable returning
            this slot's extra capacity constraints (phase balance, heat
            density) — evaluated after telemetry is current, e.g.
            ``lambda: phase_assignment.phase_headroom()`` or
            ``lambda: zone_constraints(zones, scenario.topology)``.
        enforcement: Optional
            :class:`repro.infrastructure.enforcement.EnforcementPolicy`
            policing budget overdraws: warned racks escalate to an
            involuntary spot-market bar (paper §III-C).
        fault_model: Optional
            :class:`repro.sim.faults.CommunicationFaultModel` injecting
            bid/grant communication losses (paper §III-C "Handling
            exceptions"): a lost bid skips the tenant's participation
            for the slot; a lost grant broadcast reverts the rack to "no
            spot capacity" and cancels its billing.
    """

    def __init__(
        self,
        scenario: Scenario,
        allocator: Allocator | None = None,
        spot_predictor: SpotCapacityPredictor | None = None,
        price_predictor: PricePredictor | None = None,
        history_slots: int = 200_000,
        reference_window: int = 5,
        constraint_provider=None,
        fault_model=None,
        enforcement=None,
    ) -> None:
        self.scenario = scenario
        self.reference_window = reference_window
        self.constraint_provider = constraint_provider
        self.fault_model = fault_model
        self.enforcement = enforcement
        self.allocator = allocator or SpotDCAllocator(
            params=MarketParameters(slot_seconds=scenario.slot_seconds)
        )
        self.spot_predictor = spot_predictor or SpotCapacityPredictor()
        self.price_predictor = price_predictor
        self.monitor = PowerMonitor(scenario.topology, history_slots=history_slots)
        self.emergencies = EmergencyLog()
        self.ledger = OperatorLedger(
            price_sheet=scenario.price_sheet,
            overprovisioned_w=(
                scenario.overprovisioned_w()
                if self.allocator.provisions_spot
                else 0.0
            ),
            infrastructure_cost_per_hour=scenario.infrastructure_cost_per_hour,
        )
        rack_infos = scenario.rack_infos()
        tenant_infos = scenario.tenant_infos()
        self.collector = MetricsCollector(
            rack_ids=[r.rack_id for r in rack_infos],
            pdu_ids=list(scenario.topology.pdus),
            tenant_ids=[t.tenant_id for t in tenant_infos],
        )
        self._rack_infos = rack_infos
        self._tenant_infos = tenant_infos

    def run(self, slots: int) -> SimulationResult:
        """Simulate ``slots`` slots and return the finished result."""
        if slots <= 0:
            raise SimulationError("slots must be positive")
        scenario = self.scenario
        topology = scenario.topology
        scenario.prepare(slots)
        participants = scenario.participating_tenants()
        slot_seconds = scenario.slot_seconds
        slot_hours = slot_seconds / 3600.0
        total_guaranteed = scenario.total_guaranteed_w()

        for slot in range(slots):
            topology.clear_all_spot_budgets()

            requesting = frozenset(
                rack_id
                for tenant in participants
                for rack_id in tenant.needed_spot_w(slot)
            )
            if slot == 0:
                record = _empty_record()
                forecast = SpotCapacityForecast(
                    pdu_spot_w={p: 0.0 for p in topology.pdus}, ups_spot_w=0.0
                )
            else:
                # Conservative per-rack references: a participating rack's
                # draw can ramp within one slot, so reference its recent
                # peak rather than its instantaneous draw.
                references = {
                    rack_id: self.monitor.rack_recent_max_w(
                        rack_id, self.reference_window
                    )
                    for rack_id in topology.racks
                }
                forecast = self.spot_predictor.forecast(
                    topology, requesting, references
                )
                predicted_price = (
                    self.price_predictor.predict() if self.price_predictor else None
                )
                extra_constraints = (
                    tuple(self.constraint_provider())
                    if self.constraint_provider is not None
                    else ()
                )
                # Bid-submission losses: affected tenants sit the slot out
                # (the default "no spot capacity" state — §III-C).
                active = participants
                if self.fault_model is not None:
                    active = [
                        tenant
                        for tenant in participants
                        if not self.fault_model.bid_lost(slot, tenant.tenant_id)
                    ]
                record = self.allocator.allocate(
                    slot,
                    active,
                    forecast,
                    slot_seconds,
                    predicted_price,
                    extra_constraints=extra_constraints,
                )
                if self.fault_model is not None:
                    lost = {
                        rack_id
                        for rack_id, grant in record.result.grants_w.items()
                        if grant > 0
                        and self.fault_model.grant_lost(slot, rack_id)
                    }
                    record = _revoke_grants(record, lost, slot_seconds)
                if self.enforcement is not None:
                    barred = self.enforcement.barred_racks(slot)
                    revoked = {
                        rack_id
                        for rack_id in record.result.grants_w
                        if rack_id in barred
                    }
                    record = _revoke_grants(record, revoked, slot_seconds)
                for rack_id, grant in record.result.grants_w.items():
                    topology.rack(rack_id).set_spot_budget(grant)

            # Tenants execute the slot under their enforced budgets.
            outcomes: dict[str, SlotPerformance] = {}
            for tenant in scenario.tenants:
                budgets = {
                    rack.rack_id: rack.guaranteed_w
                    + record.result.grant_for(rack.rack_id)
                    for rack in tenant.racks
                }
                outcomes.update(tenant.execute_slot(slot, budgets, slot_seconds))

            rack_power = {rid: perf.power_w for rid, perf in outcomes.items()}
            self.monitor.record_slot(rack_power)
            self.emergencies.scan(topology, slot)
            if self.enforcement is not None:
                self.enforcement.review(topology, slot)

            spot_revenue = (
                record.result.revenue_for_slot(slot_seconds)
                if self.allocator.charges_tenants
                else 0.0
            )
            payments = record.payments if self.allocator.charges_tenants else {}
            self.ledger.record_slot(
                slot_hours=slot_hours,
                guaranteed_w=total_guaranteed,
                spot_revenue=spot_revenue,
                metered_energy_w=self.monitor.latest_ups_power_w(),
            )
            self.collector.record_slot(
                price=record.result.price,
                grants_w=record.result.grants_w,
                spot_revenue=spot_revenue,
                forecast_ups_w=forecast.ups_spot_w,
                forecast_pdu_total_w=forecast.total_pdu_spot_w,
                ups_power_w=self.monitor.latest_ups_power_w(),
                pdu_power_w={
                    p: self.monitor.latest_pdu_power_w(p) for p in topology.pdus
                },
                rack_outcomes=outcomes,
                payments=payments,
                wanted_rack_ids=requesting,
                pdu_prices=record.result.pdu_prices,
            )
            if self.price_predictor is not None:
                self.price_predictor.observe(record.result.price)

        return SimulationResult(
            allocator_name=self.allocator.name,
            slot_seconds=slot_seconds,
            collector=self.collector,
            ledger=self.ledger,
            emergencies=self.emergencies,
            racks=self._rack_infos,
            tenants=self._tenant_infos,
            energy_tariff_per_kwh=scenario.price_sheet.energy_tariff_per_kwh,
            guaranteed_rate_per_kw_hour=scenario.price_sheet.guaranteed_rate_per_kw_hour,
            ups_capacity_w=topology.ups.capacity_w,
            pdu_capacities_w={
                pdu_id: pdu.capacity_w for pdu_id, pdu in topology.pdus.items()
            },
        )


def _empty_record() -> SlotMarketRecord:
    from repro.core.allocation import AllocationResult

    return SlotMarketRecord(result=AllocationResult.empty(), bids=(), payments={})


def _revoke_grants(
    record: SlotMarketRecord, lost: set[str], slot_seconds: float
) -> SlotMarketRecord:
    """Revoke a set of grants and rebill the survivors.

    Used for both lost grant broadcasts and enforcement bars: the rack
    PDU stays at the guaranteed budget, the operator does not bill the
    revoked grant — strictly safe (feasible capacity is simply unused).
    """
    import dataclasses as _dc

    from repro.core.allocation import AllocationResult

    result = record.result
    if not lost:
        return record
    grants = {
        rack_id: (0.0 if rack_id in lost else grant)
        for rack_id, grant in result.grants_w.items()
    }
    if record.frame is not None:
        # Rebill straight off the slot's columnar frame: only surviving
        # positive grants pay (the revocation semantics).
        hourly, payments = record.frame.settle(
            grants,
            result.pdu_prices,
            result.price,
            slot_seconds,
            positive_only=True,
        )
        revenue_rate = hourly
    else:
        bid_of = {bid.rack_id: bid for bid in record.bids}
        slot_hours = slot_seconds / 3600.0
        payments = {}
        revenue_rate = 0.0
        for rack_id, grant in grants.items():
            if grant <= 0 or rack_id not in bid_of:
                continue
            bid = bid_of[rack_id]
            price = result.price_for_pdu(bid.pdu_id)
            revenue_rate += price * grant / 1000.0
            payments[bid.tenant_id] = payments.get(bid.tenant_id, 0.0) + (
                grant / 1000.0
            ) * price * slot_hours
    adjusted = AllocationResult(
        price=result.price,
        grants_w=grants,
        revenue_rate=revenue_rate,
        candidate_prices=result.candidate_prices,
        feasible_prices=result.feasible_prices,
        pdu_prices=result.pdu_prices,
    )
    return _dc.replace(record, result=adjusted, payments=payments)


def run_simulation(
    scenario: Scenario,
    slots: int,
    allocator: Allocator | None = None,
    spot_predictor: SpotCapacityPredictor | None = None,
    use_price_forecasting: bool = False,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`.

    Args:
        scenario: Scenario to run (freshly built — workload state is
            consumed by a run).
        slots: Number of slots.
        allocator: Allocation policy (default SpotDC market).
        spot_predictor: Operator-side predictor (default: exact, no
            under-prediction).
        use_price_forecasting: Provide tenants an EWMA price forecast
            (strategies that ignore forecasts are unaffected).
    """
    engine = SimulationEngine(
        scenario,
        allocator=allocator,
        spot_predictor=spot_predictor,
        price_predictor=EwmaPricePredictor() if use_price_forecasting else None,
    )
    return engine.run(slots)
