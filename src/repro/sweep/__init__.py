"""Declarative, process-parallel sweeps over scenario specs.

Grid expansion and per-cell seed derivation live in
:mod:`repro.sweep.grid`; the fan-out runner and the sweep-file format in
:mod:`repro.sweep.runner`.  The experiment harnesses (`fig17`, `fig18`,
ablations, the chaos sweep) share :func:`parallel_map` for their
``jobs=N`` fan-out.  See ``docs/scenarios.md``.
"""

from repro.sweep.grid import (
    SweepCell,
    apply_overrides,
    build_cells,
    derive_cell_seed,
    expand_axes,
)
from repro.sweep.runner import (
    SWEEP_CONFIG_SCHEMA,
    load_sweep_file,
    parallel_map,
    run_sweep,
    sweep_summary_path,
)

__all__ = [
    "SWEEP_CONFIG_SCHEMA",
    "SweepCell",
    "apply_overrides",
    "build_cells",
    "derive_cell_seed",
    "expand_axes",
    "load_sweep_file",
    "parallel_map",
    "run_sweep",
    "sweep_summary_path",
]
