"""The parallel sweep runner.

Runs every cell of a declarative sweep — a grid of scenario-spec
overrides (:mod:`repro.sweep.grid`) over a base scenario — fanning out
across CPU cores with :class:`~concurrent.futures.ProcessPoolExecutor`,
and collects the per-cell metrics into the repo's validated BENCH
summary envelope (:func:`repro.telemetry.exporters.write_summary_json`).

Determinism: cells are pure functions of ``(spec, slots)`` — every
stochastic choice flows from the cell's derived seed — so ``--jobs N``
changes wall-clock only, never a number.  ``tests/test_sweep.py`` pins
serial/parallel result identity; ``benchmarks/bench_sweep.py`` pins the
speedup.

A *sweep file* (JSON or YAML) declares the whole study::

    name: oversubscription-grid
    base: {preset: testbed}
    slots: 400
    compare: true
    axes:
      supply.ups_oversubscription: [1.0, 1.05]
      time.slot_seconds: [60, 120]

``base`` names a preset (with optional ``args``), a spec ``file`` path,
or an inline ``spec``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.errors import ConfigurationError, SweepCellError
from repro.scenarios.schema import validate_instance
from repro.scenarios.spec import load_spec_file, normalize_spec
from repro.sweep.grid import build_cells

__all__ = [
    "SWEEP_CONFIG_SCHEMA",
    "load_sweep_file",
    "parallel_map",
    "run_sweep",
    "sweep_summary_path",
]

#: Schema for sweep files, validated with the scenario-schema walker
#: (same JSON-pointer errors).
SWEEP_CONFIG_SCHEMA = {
    "type": "object",
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "base": {
            "type": "object",
            "properties": {
                "preset": {"type": "string", "minLength": 1},
                "args": {"type": "object"},
                "file": {"type": "string", "minLength": 1},
                "spec": {"type": "object"},
            },
            "required": [],
            "additionalProperties": False,
        },
        "slots": {"type": "integer", "exclusiveMinimum": 0},
        "seed": {"type": ["integer", "null"]},
        "compare": {"type": "boolean"},
        "axes": {"type": "object"},
    },
    "required": ["name", "base", "axes"],
    "additionalProperties": False,
}

#: Default per-cell horizon for sweep files that do not set ``slots``.
DEFAULT_SWEEP_SLOTS = 400


def parallel_map(fn, items, jobs: int = 1) -> list:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    ``jobs <= 1`` runs serially in-process (no pool, no pickling — the
    fast path for small sweeps and the reference for result-identity
    tests).  ``fn`` and the items must be picklable for ``jobs > 1``:
    define cell functions at module level and pass plain-data payloads.
    Result order always matches item order.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


#: Marker key for a captured worker-side failure (see :func:`_run_cell`).
_CELL_ERROR = "__cell_error__"


def _run_cell(payload) -> dict:
    """Run one sweep cell and reduce it to plain-float metrics.

    Module-level and plain-data in/out, so it crosses process
    boundaries.  ``payload`` is ``(cell, slots, compare)``.

    A failure inside the cell is *captured* as a marker dict rather than
    raised: a raising worker would abort ``ProcessPoolExecutor.map``
    mid-grid, losing every in-flight cell.  :func:`run_sweep` turns the
    markers into one :class:`~repro.errors.SweepCellError` after the
    whole grid has completed — so the failing cell is identified by its
    overrides, the surviving cells' work is not wasted, and which cell
    fails cannot depend on ``jobs`` (worker scheduling).
    """
    try:
        return _run_cell_inner(payload)
    except Exception as exc:
        # The exception object itself may not pickle across the process
        # boundary (or may drag engine state with it); its string form
        # always survives.
        return {_CELL_ERROR: f"{type(exc).__name__}: {exc}"}


def _run_cell_inner(payload) -> dict:
    from repro.core.baselines import PowerCappedAllocator
    from repro.scenarios.loader import build_scenario
    from repro.sim.engine import run_simulation

    cell, slots, compare = payload
    result = run_simulation(build_scenario(cell.spec), slots)
    prices = result.price_series()
    positive = prices[prices > 0]
    metrics = {
        "spot_revenue": float(result.total_spot_revenue()),
        "mean_price": float(positive.mean()) if positive.size else 0.0,
        "emergencies": int(result.emergencies.count()),
        "spot_granted_w_mean": float(
            result.collector.spot_granted_array().mean()
        ),
    }
    if compare:
        from repro.experiments.common import (
            mean_cost_increase,
            mean_perf_improvement,
        )

        baseline = run_simulation(
            build_scenario(cell.spec), slots, allocator=PowerCappedAllocator()
        )
        metrics["profit_increase"] = float(
            result.operator_profit_increase_vs(baseline)
        )
        metrics["perf_improvement"] = float(
            mean_perf_improvement(result, baseline)
        )
        metrics["cost_increase"] = float(
            mean_cost_increase(result, baseline)
        )
    return metrics


def _resolve_base(base: dict) -> dict:
    """Materialise a sweep file's ``base`` stanza into a spec."""
    forms = [key for key in ("preset", "file", "spec") if key in base]
    if len(forms) != 1:
        raise ConfigurationError(
            "/base: give exactly one of 'preset', 'file', or 'spec', "
            f"got {forms or 'none'}"
        )
    if "args" in base and forms != ["preset"]:
        raise ConfigurationError("/base/args: only valid with 'preset'")
    if "preset" in base:
        from repro.scenarios.presets import preset_spec

        return preset_spec(base["preset"], **base.get("args", {}))
    if "file" in base:
        return load_spec_file(base["file"])
    return base["spec"]


def run_sweep(
    config: dict,
    jobs: int = 1,
    out_dir=None,
) -> dict:
    """Run one declarative sweep; optionally archive its BENCH envelope.

    Args:
        config: Sweep config (the sweep-file mapping; see module doc).
        jobs: Worker processes; 1 runs serially.
        out_dir: When set, write ``BENCH_sweep_<name>.json`` there via
            the validated summary-envelope writer.

    Returns:
        The envelope ``data`` payload: sweep name, grid, per-cell
        overrides/seeds/metrics (in deterministic cell order).
    """
    validate_instance(config, SWEEP_CONFIG_SCHEMA, "")
    base_spec = normalize_spec(_resolve_base(config["base"]))
    slots = config.get("slots", DEFAULT_SWEEP_SLOTS)
    compare = config.get("compare", True)
    base_seed = config.get("seed")
    if base_seed is None:
        base_seed = base_spec["seed"]
    cells = build_cells(base_spec, config["axes"], base_seed=base_seed)
    payloads = [(cell, slots, compare) for cell in cells]
    metrics = parallel_map(_run_cell, payloads, jobs=jobs)
    failures = [
        (cell, cell_metrics[_CELL_ERROR])
        for cell, cell_metrics in zip(cells, metrics)
        if _CELL_ERROR in cell_metrics
    ]
    if failures:
        # Every cell ran to completion (or captured its failure) before
        # this raise: report the first failing cell in grid order — a
        # jobs-independent choice — and note how many more failed.
        cell, cause = failures[0]
        if len(failures) > 1:
            cause = f"{cause} (+{len(failures) - 1} more failing cells)"
        raise SweepCellError(cell.index, cell.overrides, cause)
    data = {
        "name": config["name"],
        "slots": slots,
        "compare": compare,
        "axes": {path: list(values) for path, values in config["axes"].items()},
        "cells": [
            {
                "index": cell.index,
                "overrides": cell.overrides,
                "seed": cell.seed,
                "metrics": cell_metrics,
            }
            for cell, cell_metrics in zip(cells, metrics)
        ],
    }
    if out_dir is not None:
        from repro.telemetry.exporters import write_summary_json

        write_summary_json(
            sweep_summary_path(out_dir, config["name"]),
            bench=f"sweep_{config['name']}",
            data=data,
            meta={
                "jobs": jobs,
                "cell_count": len(cells),
                "base_seed": base_seed,
            },
        )
    return data


def sweep_summary_path(out_dir, name: str):
    """Envelope path for one sweep (filename-safe name)."""
    import pathlib

    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in name)
    return pathlib.Path(out_dir) / f"BENCH_sweep_{safe}.json"


def load_sweep_file(path) -> dict:
    """Read and validate one sweep file (JSON or YAML)."""
    import pathlib

    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read sweep file {path}: {exc}"
        ) from exc
    config = _parse_config_text(text, source=str(path))
    validate_instance(config, SWEEP_CONFIG_SCHEMA, "")
    # Resolve spec files relative to the sweep file's directory.
    base = config["base"]
    if "file" in base:
        base["file"] = str((path.parent / base["file"]).resolve())
    return config


def _parse_config_text(text: str, source: str) -> dict:
    import json

    try:
        raw = json.loads(text)
    except json.JSONDecodeError:
        try:
            import yaml
        except ImportError:
            raise ConfigurationError(
                f"{source}: not valid JSON and PyYAML is not installed"
            ) from None
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigurationError(f"{source}: invalid YAML: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigurationError(
            f"{source}: sweep config must be a mapping, got {type(raw).__name__}"
        )
    return raw
