"""Declarative sweep grids over scenario-spec overrides.

A *grid* is a mapping of dotted override paths to value lists::

    axes = {
        "supply.ups_oversubscription": [1.0, 1.05, 1.1],
        "time.slot_seconds": [60, 120],
    }

:func:`expand_axes` takes its Cartesian product (first axis slowest, in
declaration order, so cell order is deterministic), and
:func:`apply_overrides` materialises one cell's spec.  Every override
path must name a field that already exists in the normalised spec —
typos fail loudly with a JSON-pointer error instead of silently adding
an ignored key.  Numeric path segments index into lists
(``topology.pdus.0.oversubscription``).

Per-cell seeds derive deterministically from the base seed and the
cell's overrides (:func:`derive_cell_seed`): distinct cells get
decorrelated workload streams, yet any cell can be reproduced in
isolation without running the rest of the sweep.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import itertools
import json

from repro.errors import ConfigurationError
from repro.scenarios.spec import normalize_spec

__all__ = [
    "SweepCell",
    "apply_overrides",
    "build_cells",
    "derive_cell_seed",
    "expand_axes",
]


def expand_axes(axes) -> list[dict]:
    """Cartesian product of a ``{path: [values...]}`` grid.

    Returns one override mapping per cell, first axis varying slowest.
    An empty grid yields the single empty-override cell.
    """
    if not isinstance(axes, dict):
        raise ConfigurationError(
            f"axes must be a mapping of path -> values, got {type(axes).__name__}"
        )
    for path, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigurationError(
                f"axis {path!r} must be a non-empty list of values"
            )
    paths = list(axes)
    return [
        dict(zip(paths, combo))
        for combo in itertools.product(*(axes[p] for p in paths))
    ]


def apply_overrides(spec: dict, overrides) -> dict:
    """Return a copy of a normalised spec with dotted-path overrides set.

    Each path must resolve to an *existing* field (the final segment
    included), so an override can never silently create a key the
    loader ignores.  Failures carry the JSON pointer of the bad segment.
    """
    result = copy.deepcopy(spec)
    for path, value in overrides.items():
        segments = str(path).split(".")
        node = result
        pointer = ""
        for i, segment in enumerate(segments):
            last = i == len(segments) - 1
            if isinstance(node, list):
                try:
                    index = int(segment)
                    node[index]
                except (ValueError, IndexError):
                    raise ConfigurationError(
                        f"override {path!r}: {pointer}/{segment} does not "
                        f"index a list of {len(node)} item(s)"
                    ) from None
                if last:
                    node[index] = value
                else:
                    node = node[index]
            elif isinstance(node, dict):
                if segment not in node:
                    known = ", ".join(sorted(map(str, node))) or "(none)"
                    raise ConfigurationError(
                        f"override {path!r}: no field {pointer}/{segment} "
                        f"(known: {known})"
                    )
                if last:
                    node[segment] = value
                else:
                    node = node[segment]
            else:
                raise ConfigurationError(
                    f"override {path!r}: {pointer or '/'} is a scalar, "
                    f"cannot descend into {segment!r}"
                )
            pointer = f"{pointer}/{segment}"
    # Re-normalise: overrides are user input and must re-pass the schema.
    return normalize_spec(result)


def derive_cell_seed(base_seed: int, overrides) -> int:
    """A deterministic, decorrelated seed for one sweep cell.

    Hashes the base seed together with the cell's canonicalised
    overrides, so (a) every distinct cell draws an independent workload
    stream, (b) the same cell always gets the same seed — any cell is
    reproducible standalone — and (c) the empty-override cell keeps the
    base seed, making a 1-cell sweep identical to a plain run.
    """
    if not overrides:
        return int(base_seed)
    canonical = json.dumps(
        {"seed": int(base_seed), "overrides": overrides},
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(canonical.encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One cell of an expanded sweep: its overrides and final spec.

    Picklable (plain data only), so cells travel to worker processes.

    Attributes:
        index: Position in the expanded grid (deterministic order).
        overrides: The ``{path: value}`` mapping that distinguishes this
            cell.
        seed: The derived per-cell seed, already applied to ``spec``.
        spec: The cell's fully-normalised scenario spec.
    """

    index: int
    overrides: dict
    seed: int
    spec: dict


def build_cells(base_spec, axes, base_seed: "int | None" = None) -> list[SweepCell]:
    """Expand a grid over a base spec into concrete sweep cells.

    Args:
        base_spec: The spec every cell starts from (normalised here).
        axes: ``{dotted-path: [values...]}`` grid.
        base_seed: Seed the per-cell seeds derive from; defaults to the
            base spec's own seed.
    """
    base = normalize_spec(base_spec)
    seed = base["seed"] if base_seed is None else int(base_seed)
    cells = []
    for index, overrides in enumerate(expand_axes(axes)):
        spec = apply_overrides(base, overrides)
        cell_seed = derive_cell_seed(seed, overrides)
        spec["seed"] = cell_seed
        cells.append(
            SweepCell(index=index, overrides=overrides, seed=cell_seed, spec=spec)
        )
    return cells
