"""Client library for the SpotDC market daemon.

:class:`DaemonClient` is a small synchronous client over the daemon's
unix socket speaking the newline-delimited JSON protocol of
:mod:`repro.daemon.protocol`.  It is built for an *at-least-once* world:

* **Retries with full-jitter exponential backoff** — connection refused,
  a vanished socket file, a reset mid-request, or a read timeout all
  mean "the daemon may be restarting"; the client reconnects and resends
  after ``uniform(0, min(cap, base * 2^attempt))`` seconds (jitter from
  a client-owned seeded RNG, so tests are deterministic and a fleet of
  clients doesn't thundering-herd a restarted daemon).
* **Idempotency keys** — every submit carries a key (default
  ``"{tenant_id}:{slot}"``); resending after a lost ack returns the
  daemon's stored response for that key instead of double-entering the
  market, so retrying blindly is always safe.

Responses are returned as dicts exactly as received; ``ok`` is the
success flag and failures carry ``error.code`` /
``error.detail`` (see :data:`repro.daemon.protocol.REJECTION_CODES`).
Only transport-level failures raise (:class:`~repro.errors.DaemonError`
after retries are exhausted, :class:`~repro.errors.ProtocolError` on an
undecodable response) — a market rejection is a *result*, not an
exception.
"""

from __future__ import annotations

import random
import socket
import time
from pathlib import Path

from repro.daemon.protocol import decode_line, encode_message
from repro.errors import DaemonError, ProtocolError

__all__ = ["DaemonClient", "default_key"]

#: Transport failures worth retrying: the daemon crashed, is restarting,
#: or has not re-bound its socket yet.  ``OSError`` covers
#: ``ConnectionRefusedError``/``ConnectionResetError``/``BrokenPipeError``
#: and ``FileNotFoundError`` (no socket file), plus ``socket.timeout``.
_RETRYABLE = (OSError, EOFError)


def default_key(tenant_id: str, slot: int) -> str:
    """The default idempotency key: one submission per tenant per slot."""
    return f"{tenant_id}:{slot}"


class DaemonClient:
    """Retrying unix-socket client for the market daemon.

    Args:
        socket_path: The daemon's unix socket.
        timeout: Per-request socket timeout in seconds.
        retries: Transport retries per request after the first attempt.
        backoff_base: First-retry backoff ceiling in seconds; doubles
            each attempt.
        backoff_cap: Upper bound on any single backoff sleep.
        seed: Seed for the jitter RNG (deterministic backoff in tests).
    """

    def __init__(
        self,
        socket_path: str | Path,
        *,
        timeout: float = 5.0,
        retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._buffer = b""

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(self.socket_path))
            self._sock = sock
            self._buffer = b""
        return self._sock

    def close(self) -> None:
        """Drop the connection (a later request reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> DaemonClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _read_line(self, sock: socket.socket) -> bytes:
        while b"\n" not in self._buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise EOFError("daemon closed the connection mid-response")
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return line

    def request(self, message: dict) -> dict:
        """Send one request, retrying transport failures with backoff.

        Safe to call with submits precisely because they carry
        idempotency keys: a resend after a lost ack is absorbed by the
        daemon's stored-response map.

        Raises:
            DaemonError: When every attempt failed at the transport
                level (daemon down for longer than the backoff budget).
            ProtocolError: When the daemon answered with an undecodable
                line.
        """
        payload = encode_message(message)
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                # Full jitter: sleep anywhere in [0, min(cap, base*2^a)]
                # so a restarted daemon is not hit by synchronized
                # retries.
                ceiling = min(
                    self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
                )
                time.sleep(self._rng.uniform(0.0, ceiling))
            try:
                sock = self._connect()
                sock.sendall(payload)
                return decode_line(self._read_line(sock))
            except _RETRYABLE as exc:
                last_error = exc
                self.close()
        raise DaemonError(
            f"daemon at {self.socket_path} unreachable after "
            f"{self.retries + 1} attempts: {last_error!r}"
        ) from last_error

    # -- protocol ops --------------------------------------------------

    def hello(self) -> dict:
        """Server identity: horizon, next slot, tick mode."""
        return self.request({"op": "hello"})

    def describe(self) -> dict:
        """The tenant/rack directory (ids, PDU attachment, spot caps)."""
        return self.request({"op": "describe"})

    def submit(
        self,
        tenant_id: str,
        slot: int,
        racks: list[dict],
        *,
        key: str | None = None,
    ) -> dict:
        """Submit one bid bundle for a slot.

        Args:
            tenant_id: The bidding tenant.
            slot: Target market slot (must not have cleared yet).
            racks: ``[{"rack_id", "demand"}]`` wire entries; ``demand``
                is a linear or step demand spec (see
                :mod:`repro.daemon.protocol`).
            key: Idempotency key; defaults to :func:`default_key`, which
                makes retries of the same tenant+slot submission
                collapse into one market entry.
        """
        return self.request(
            {
                "op": "submit",
                "key": key if key is not None else default_key(tenant_id, slot),
                "tenant_id": tenant_id,
                "slot": slot,
                "racks": racks,
            }
        )

    def tick(self) -> dict:
        """Clear the next slot (manual-tick servers only)."""
        return self.request({"op": "tick"})

    def status(self) -> dict:
        """Run progress: next slot, done flag, queue depths."""
        return self.request({"op": "status"})

    def result(self, slot: int) -> dict:
        """The journal record of a cleared slot."""
        return self.request({"op": "result", "slot": slot})

    def invoices(self) -> dict:
        """Per-tenant invoice totals (once the run has completed)."""
        return self.request({"op": "invoices"})

    def shutdown(self) -> dict:
        """Ask the daemon to stop serving."""
        response = self.request({"op": "shutdown"})
        self.close()
        return response

    def wait_done(self, *, poll_seconds: float = 0.05, budget: float = 60.0) -> dict:
        """Poll ``status`` until the run completes (wall-clock servers).

        Raises:
            DaemonError: If the run is still incomplete after ``budget``
                seconds.
        """
        deadline = time.monotonic() + budget
        while True:
            status = self.request({"op": "status"})
            if status.get("done"):
                return status
            if time.monotonic() >= deadline:
                raise ProtocolError(
                    f"daemon run incomplete after {budget}s "
                    f"(next_slot={status.get('next_slot')})"
                )
            time.sleep(poll_seconds)
