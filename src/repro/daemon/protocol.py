"""Wire protocol of the SpotDC market daemon.

Newline-delimited JSON over a unix socket: every request is one JSON
object on one line, every response is one JSON object on one line.
Responses always carry ``"ok"`` (bool) and echo the request ``"op"``;
failures carry ``"error": {"code", "detail"}`` with a machine-readable
code from :data:`REJECTION_CODES`.

The protocol is deliberately *server-authoritative*: a submission names
only the rack and its demand function — the PDU attachment and the
rack's physical spot headroom (``rack_cap_w``) are filled in from the
daemon's topology, so a client can never forge its rack's cap.  Clients
learn their racks from ``describe``, making them pure protocol
consumers with no scenario object in hand.

Requests
--------

=========== ==========================================================
op          payload
=========== ==========================================================
hello       ``{}`` — server identity: slots, next_slot, slot_seconds
describe    ``{}`` — tenants and their racks (ids, pdu, max_spot_w)
submit      ``{key, slot, tenant_id, racks: [{rack_id, demand}]}``
status      ``{}`` — next_slot, done flag, pending queue depths
result      ``{slot}`` — the cleared slot's journal record
invoices    ``{}`` — per-tenant invoice totals (after the run finished)
tick        ``{}`` — process the next slot (manual-tick servers only)
shutdown    ``{}`` — stop serving after this response
=========== ==========================================================

``demand`` is ``{"kind": "linear", "d_max_w", "q_min", "d_min_w",
"q_max"}`` or ``{"kind": "step", "demand_w", "price_cap"}`` — the two
demand-function forms of :mod:`repro.core.demand`.

Idempotent submission
---------------------

Every submit carries a client-chosen ``key``.  The daemon remembers the
final response per key; redelivering the same key (an at-least-once
client retrying after a lost ack) returns the stored response without
re-enqueueing anything — the enforcement half of the double-billing
guarantee.  A *different* key for a slot the tenant already occupies is
rejected with ``already_submitted``.
"""

from __future__ import annotations

import json
import math

from repro.core.bids import RackBid, TenantBid
from repro.core.demand import LinearBid, StepBid
from repro.errors import BidError, ProtocolError
from repro.recovery.admission import inspect_rack_bid

__all__ = [
    "REJECTION_CODES",
    "decode_line",
    "encode_message",
    "parse_submission",
    "stored_tenant_bid",
]

#: Machine-readable rejection codes a submit (or any request) can earn.
REJECTION_CODES = (
    "bad_request",  # unparseable JSON or missing/ill-typed fields
    "unknown_op",  # op not in the table above
    "unknown_tenant",  # tenant_id not in the scenario
    "unknown_rack",  # rack not owned by the tenant
    "malformed_bundle",  # demand failed construction or admission checks
    "too_late",  # slot already cleared (or slot 0, which has no market)
    "beyond_horizon",  # slot >= run horizon
    "already_submitted",  # same tenant+slot under a different key
    "shed",  # accepted, then shed by queue overflow (returned on retry)
    "not_ready",  # result/invoices requested before they exist
    "shutting_down",  # daemon is stopping
)

_DEMAND_FIELDS = {
    "linear": ("d_max_w", "q_min", "d_min_w", "q_max"),
    "step": ("demand_w", "price_cap"),
}


def encode_message(message: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line.

    ``sort_keys`` keeps the wire form (and everything journalled from
    it) byte-deterministic.
    """
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one received line into a message dict.

    Raises:
        ProtocolError: If the line is not a JSON object.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages must be JSON objects, got {type(message).__name__}"
        )
    return message


def _demand_from_spec(spec) -> LinearBid | StepBid:
    """Build the demand function named by a wire spec.

    Raises:
        BidError: On an unknown kind, missing/ill-typed fields, or
            parameters the demand constructors reject.
    """
    if not isinstance(spec, dict):
        raise BidError(f"demand must be an object, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in _DEMAND_FIELDS:
        raise BidError(
            f"demand kind must be 'linear' or 'step', got {kind!r}"
        )
    values = []
    for field in _DEMAND_FIELDS[kind]:
        value = spec.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise BidError(f"demand field {field!r} must be a number")
        if not math.isfinite(value):
            raise BidError(f"demand field {field!r} must be finite")
        values.append(float(value))
    if kind == "linear":
        return LinearBid(*values)
    return StepBid(*values)


def parse_submission(message: dict, racks_of_tenant: dict) -> dict:
    """Validate a submit request into its canonical stored form.

    Args:
        message: The decoded submit request.
        racks_of_tenant: ``{tenant_id: {rack_id: rack}}`` directory built
            from the daemon's scenario (racks expose ``pdu_id`` and
            ``max_spot_w``).

    Returns:
        The canonical stored form — ``{"key", "slot", "tenant_id",
        "racks": [{"rack_id", "demand"}]}`` with racks sorted by id —
        which is what the write-ahead bid log persists and what
        :func:`stored_tenant_bid` later rebuilds the market bundle from.
        Storing the *wire* form (not the built objects) keeps replay
        after a crash bit-for-bit identical to first delivery.

    Raises:
        ProtocolError: With ``.code`` set to one of
            :data:`REJECTION_CODES` on any validation failure.
    """
    tenant_id = message.get("tenant_id")
    if not isinstance(tenant_id, str) or not tenant_id:
        raise _rejection("bad_request", "submit requires a tenant_id string")
    slot = message.get("slot")
    if not isinstance(slot, int) or isinstance(slot, bool):
        raise _rejection("bad_request", "submit requires an integer slot")
    key = message.get("key")
    if not isinstance(key, str) or not key:
        raise _rejection("bad_request", "submit requires a non-empty key string")
    racks = message.get("racks")
    if not isinstance(racks, list) or not racks:
        raise _rejection("bad_request", "submit requires a non-empty racks list")
    owned = racks_of_tenant.get(tenant_id)
    if owned is None:
        raise _rejection("unknown_tenant", f"unknown tenant {tenant_id!r}")
    stored_racks = []
    seen: set[str] = set()
    for entry in racks:
        if not isinstance(entry, dict):
            raise _rejection("bad_request", "each rack entry must be an object")
        rack_id = entry.get("rack_id")
        if not isinstance(rack_id, str) or rack_id not in owned:
            raise _rejection(
                "unknown_rack",
                f"tenant {tenant_id!r} owns no rack {rack_id!r}",
            )
        if rack_id in seen:
            raise _rejection(
                "malformed_bundle", f"rack {rack_id!r} appears twice in bundle"
            )
        seen.add(rack_id)
        rack = owned[rack_id]
        try:
            demand = _demand_from_spec(entry.get("demand"))
        except BidError as exc:
            raise _rejection("malformed_bundle", str(exc)) from exc
        # The admission front door runs *here*, at ingestion, as
        # backpressure: a bundle that would be quarantined at clearing
        # is rejected with the same machine-readable reason instead of
        # occupying queue space.
        bid = RackBid(
            rack_id=rack_id,
            pdu_id=rack.pdu_id,
            tenant_id=tenant_id,
            demand=demand,
            rack_cap_w=rack.max_spot_w,
        )
        verdict = inspect_rack_bid(bid)
        if verdict is not None:
            reason, detail = verdict
            raise _rejection("malformed_bundle", f"{reason}: {detail}")
        spec = dict(entry["demand"])
        spec["kind"] = spec.get("kind")
        stored_racks.append(
            {
                "rack_id": rack_id,
                "demand": {
                    k: spec[k]
                    for k in ("kind", *_DEMAND_FIELDS[spec["kind"]])
                },
            }
        )
    stored_racks.sort(key=lambda r: r["rack_id"])
    return {
        "key": key,
        "slot": slot,
        "tenant_id": tenant_id,
        "racks": stored_racks,
    }


def stored_tenant_bid(stored: dict, racks_of_tenant: dict) -> TenantBid:
    """Rebuild the market bundle from a stored submission.

    Called at clearing time (and during write-ahead-log replay after a
    crash), so first-delivery and replayed bundles are built by the
    exact same code path from the exact same stored bytes.
    """
    tenant_id = stored["tenant_id"]
    owned = racks_of_tenant[tenant_id]
    rack_bids = tuple(
        RackBid(
            rack_id=entry["rack_id"],
            pdu_id=owned[entry["rack_id"]].pdu_id,
            tenant_id=tenant_id,
            demand=_demand_from_spec(entry["demand"]),
            rack_cap_w=owned[entry["rack_id"]].max_spot_w,
        )
        for entry in stored["racks"]
    )
    return TenantBid(tenant_id=tenant_id, rack_bids=rack_bids)


def _rejection(code: str, detail: str) -> ProtocolError:
    """A ProtocolError tagged with a machine-readable rejection code."""
    error = ProtocolError(f"{code}: {detail}")
    error.code = code
    error.detail = detail
    return error
