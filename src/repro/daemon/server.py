"""The always-on SpotDC market daemon.

:class:`MarketDaemon` is the synchronous state machine — bounded
per-slot ingestion queues, idempotent submission keys, the write-ahead
bid log and market journal, per-slot checkpoints — driving the shared
:meth:`~repro.sim.engine.SimulationEngine.step_slot` market loop.
:class:`DaemonServer` wraps it in an asyncio unix-socket server
speaking the newline-delimited JSON protocol of
:mod:`repro.daemon.protocol`, clearing either on a wall-clock tick
(``tick_seconds``) or in lockstep under client ``tick`` requests
(manual mode, the deterministic harness the chaos tests drive).

Crash-safety protocol (the order is the invariant):

1. accepted submission → append to ``bids.jsonl`` + flush → ack;
2. slot tick → ``step_slot`` → append slot record to ``market.jsonl``
   + flush → checkpoint via :mod:`repro.recovery`;
3. on ``--resume``: load the newest valid checkpoint (slot *k*),
   truncate the journal to records ≤ *k*, replay the bid log through
   the same enqueue/shed logic to rebuild queues and the
   idempotency-key map, continue at *k* + 1.

Kill the process at any instant — between any two of those writes,
including mid-slot — and the resumed run re-appends byte-identical
journal records, because every slot's inputs (the checkpointed engine
plus the WAL-stored bundles, rebuilt by one shared code path) are
exactly what the uninterrupted run saw.
"""

from __future__ import annotations

import asyncio
import os
import signal
from pathlib import Path

from repro.daemon.journal import BidLog, MarketJournal
from repro.daemon.protocol import (
    decode_line,
    encode_message,
    parse_submission,
    stored_tenant_bid,
)
from repro.errors import (
    ConfigurationError,
    DaemonError,
    OperatorCrash,
    ProtocolError,
)
from repro.recovery.checkpoint import latest_checkpoint, save_checkpoint
from repro.sim.engine import SimulationEngine

__all__ = ["KILL_POINTS", "MarketDaemon", "DaemonServer", "serve"]

#: Deterministic self-SIGKILL points inside one slot tick, for crash
#: testing: before the market step, after the journal append (exercising
#: journal-ahead-of-checkpoint truncation on resume), and after the
#: checkpoint write.
KILL_POINTS = ("pre_step", "post_journal", "post_checkpoint")

#: Default bound on accepted-but-uncleared bundles per slot.
DEFAULT_MAX_PENDING = 1024


class MarketDaemon:
    """The market service state machine (transport-agnostic).

    Args:
        scenario: The facility scenario; its tenants' *workloads* still
            execute inside the daemon each slot, but their bids come
            from connected clients instead of ``make_bid``.
        slots: Run horizon.
        state_dir: Directory holding ``bids.jsonl``, ``market.jsonl``,
            and ``checkpoints/``.
        allocator: Slot allocation policy (default: the SpotDC market).
        fault_model: Optional fault injector (chaos harness).
        telemetry: Optional telemetry config/instance for the engine.
        max_pending: Bound on accepted bundles per slot; on overflow the
            *oldest* accepted bundle is shed (its key learns ``shed`` on
            retry) and the newcomer is accepted — under sustained
            overload the queue stays fresh instead of serving stale
            bids.
        resume: Resume from the newest valid checkpoint in
            ``state_dir/checkpoints`` (fresh start if there is none).
        kill_at: Slot at which to SIGKILL our own process (crash
            testing; ``None`` disables).
        kill_point: Where inside the ``kill_at`` tick to die (one of
            :data:`KILL_POINTS`).
    """

    def __init__(
        self,
        scenario,
        slots: int,
        state_dir: str | Path,
        *,
        allocator=None,
        fault_model=None,
        telemetry=None,
        max_pending: int = DEFAULT_MAX_PENDING,
        resume: bool = False,
        kill_at: int | None = None,
        kill_point: str = "post_journal",
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        if kill_point not in KILL_POINTS:
            raise ConfigurationError(
                f"kill_point must be one of {KILL_POINTS}, got {kill_point!r}"
            )
        self.state_dir = Path(state_dir)
        self.checkpoint_dir = self.state_dir / "checkpoints"
        self.max_pending = int(max_pending)
        self.kill_at = kill_at
        self.kill_point = kill_point
        self.engine = SimulationEngine(
            scenario,
            allocator=allocator,
            fault_model=fault_model,
            telemetry=telemetry,
        )
        self.slots = int(slots)
        resume_from = latest_checkpoint(self.checkpoint_dir) if resume else None
        self._next = self.engine.begin_run(self.slots, resume_from=resume_from)
        # Tenant -> rack directory; the server-authoritative source for
        # pdu_id / rack_cap_w on every submission.
        self.racks_of_tenant = {
            tenant.tenant_id: {rack.rack_id: rack for rack in tenant.racks}
            for tenant in self.engine.scenario.tenants
        }
        self.journal = MarketJournal(self.state_dir / "market.jsonl")
        self.bidlog = BidLog(self.state_dir / "bids.jsonl")
        self._slot_records = self.journal.truncate_to_slot(self._next - 1)
        self._pending: dict[int, list[dict]] = {}
        self._sheds: dict[int, list[dict]] = {}
        self._responses: dict[str, dict] = {}
        self._result = None
        self._invoices: dict | None = None
        self._done = False
        registry = self.engine.telemetry.registry
        self._m_submissions = {
            status: registry.counter(
                "daemon_submissions_total", {"status": status}
            )
            for status in ("accepted", "rejected", "duplicate")
        }
        self._m_shed = registry.counter("daemon_shed_total")
        self._m_slots = registry.counter("daemon_slots_total")
        self._g_queue = registry.gauge("daemon_queue_depth")
        self._replay()

    # -- recovery ------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild queues, sheds, and idempotency keys from disk."""
        for stored in self.bidlog.accepted():
            self._responses[stored["key"]] = self._accept_response(stored)
            if stored["slot"] >= self._next:
                # Not yet cleared: back into the bounded queue, through
                # the same shed-oldest logic as first delivery.  Cleared
                # slots only register their key; whether they ended up
                # shed comes from the journal below.
                self._enqueue(stored)
        for record in self._slot_records.values():
            for shed in record.get("shed", ()):
                self._responses[shed["key"]] = self._shed_response(
                    shed["key"], record["slot"]
                )
        self._g_queue.set(sum(len(q) for q in self._pending.values()))

    # -- responses -----------------------------------------------------

    @staticmethod
    def _accept_response(stored: dict) -> dict:
        return {
            "ok": True,
            "op": "submit",
            "key": stored["key"],
            "slot": stored["slot"],
            "status": "accepted",
        }

    @staticmethod
    def _shed_response(key: str, slot: int) -> dict:
        return {
            "ok": False,
            "op": "submit",
            "key": key,
            "slot": slot,
            "error": {
                "code": "shed",
                "detail": "bundle shed by queue overflow before clearing",
            },
        }

    @staticmethod
    def _rejection(op: str, code: str, detail: str, **extra) -> dict:
        return {
            "ok": False,
            "op": op,
            "error": {"code": code, "detail": detail},
            **extra,
        }

    # -- ingestion -----------------------------------------------------

    def _enqueue(self, stored: dict) -> None:
        """Append to the slot queue, shedding the oldest on overflow."""
        queue = self._pending.setdefault(stored["slot"], [])
        queue.append(stored)
        if len(queue) > self.max_pending:
            oldest = queue.pop(0)
            self._sheds.setdefault(stored["slot"], []).append(
                {"key": oldest["key"], "tenant": oldest["tenant_id"]}
            )
            self._responses[oldest["key"]] = self._shed_response(
                oldest["key"], stored["slot"]
            )
            self._m_shed.inc()

    def handle_submit(self, message: dict) -> dict:
        """Process one submit request; returns the response message."""
        key = message.get("key")
        if isinstance(key, str) and key in self._responses:
            # At-least-once redelivery: return the stored final response
            # without touching any state — the double-billing guard.
            self._m_submissions["duplicate"].inc()
            return self._responses[key]
        try:
            stored = parse_submission(message, self.racks_of_tenant)
        except ProtocolError as exc:
            self._m_submissions["rejected"].inc()
            return self._rejection(
                "submit",
                getattr(exc, "code", "bad_request"),
                getattr(exc, "detail", str(exc)),
                key=key if isinstance(key, str) else None,
            )
        slot = stored["slot"]
        if self._done or slot < 1 or slot < self._next:
            self._m_submissions["rejected"].inc()
            return self._rejection(
                "submit",
                "too_late",
                f"slot {slot} is closed (next open slot: "
                f"{max(1, self._next)})",
                key=stored["key"],
            )
        if slot >= self.slots:
            self._m_submissions["rejected"].inc()
            return self._rejection(
                "submit",
                "beyond_horizon",
                f"slot {slot} is beyond the {self.slots}-slot horizon",
                key=stored["key"],
            )
        queue = self._pending.get(slot, [])
        if any(e["tenant_id"] == stored["tenant_id"] for e in queue):
            self._m_submissions["rejected"].inc()
            return self._rejection(
                "submit",
                "already_submitted",
                f"tenant {stored['tenant_id']!r} already has a bundle "
                f"queued for slot {slot}",
                key=stored["key"],
            )
        # Write-ahead: the acceptance is durable before the ack exists,
        # so an ack the client received can never be forgotten by a
        # crash.
        self.bidlog.accept(stored)
        self._enqueue(stored)
        response = self._accept_response(stored)
        self._responses[stored["key"]] = response
        self._m_submissions["accepted"].inc()
        self._g_queue.set(sum(len(q) for q in self._pending.values()))
        return response

    # -- clearing ------------------------------------------------------

    def _maybe_kill(self, point: str, slot: int) -> None:
        if self.kill_at is not None and slot == self.kill_at and (
            point == self.kill_point
        ):
            os.kill(os.getpid(), signal.SIGKILL)

    def process_next_slot(self) -> dict:
        """Clear the next slot end to end; returns its journal record.

        Raises:
            DaemonError: If the run already completed.
            OperatorCrash: When an injected crash fault fires (the
                caller shuts the server down; a ``--resume`` start picks
                the run back up).
        """
        if self._done:
            raise DaemonError("run complete: no slots left to process")
        slot = self._next
        tracer = self.engine.telemetry.tracer
        self._maybe_kill("pre_step", slot)
        queued = self._pending.pop(slot, [])
        bundles = [
            stored_tenant_bid(stored, self.racks_of_tenant)
            for stored in queued
        ]
        with tracer.span("daemon.slot", slot=slot) as span:
            record = self.engine.step_slot(slot, submitted_bids=bundles)
            span.set(
                submitted=len(queued),
                shed=len(self._sheds.get(slot, ())),
                price=record.result.price,
            )
        journal_record = self._journal_record(slot, queued, record)
        self.journal.append(journal_record)
        self._maybe_kill("post_journal", slot)
        # Checkpoint *every* slot: the daemon's re-clear window after a
        # kill is never more than the slot it was in.  The final slot
        # needs none (nothing left to resume into).
        if slot + 1 < self.slots:
            save_checkpoint(self.engine, self.checkpoint_dir, slot, self.slots)
        self._maybe_kill("post_checkpoint", slot)
        self._slot_records[slot] = journal_record
        self._next = slot + 1
        self._m_slots.inc()
        self._g_queue.set(sum(len(q) for q in self._pending.values()))
        if self._next >= self.slots:
            self._finalize()
        return journal_record

    def _journal_record(self, slot: int, queued: list, record) -> dict:
        """The deterministic journal record for one cleared slot.

        Collections are explicitly sorted (and the encoder sorts keys),
        so the record's bytes depend only on the market outcome — never
        on dict iteration order or arrival timing within the slot.
        """
        return {
            "kind": "slot",
            "slot": slot,
            "submitted": sorted(s["key"] for s in queued),
            "shed": self._sheds.pop(slot, []),
            "price": record.result.price,
            "grants": {
                rack_id: grant
                for rack_id, grant in sorted(record.result.grants_w.items())
                if grant > 0
            },
            "payments": dict(sorted(record.payments.items())),
            "quarantined": sorted(
                (q.tenant_id, q.rack_id, q.reason) for q in record.quarantined
            ),
        }

    def _finalize(self) -> None:
        from repro.economics.settlement import build_all_invoices

        self._result = self.engine.finish_run()
        invoices = {
            invoice.tenant_id: {
                "subscription": invoice.subscription_charge,
                "energy": invoice.energy_charge,
                "spot": invoice.spot_charge,
                "credited": invoice.spot_credit,
                "total": invoice.total,
            }
            for invoice in build_all_invoices(self._result)
        }
        self._invoices = dict(sorted(invoices.items()))
        if self.journal.invoices_record() is None:
            self.journal.append(
                {"kind": "invoices", "invoices": self._invoices}
            )
        self._done = True

    # -- queries -------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every slot has been processed."""
        return self._done

    @property
    def next_slot(self) -> int:
        """The next slot to be cleared."""
        return self._next

    def hello(self, manual: bool) -> dict:
        return {
            "ok": True,
            "op": "hello",
            "service": "spotdc-daemon",
            "slots": self.slots,
            "next_slot": self._next,
            "slot_seconds": self.engine.scenario.slot_seconds,
            "manual": manual,
            "done": self._done,
        }

    def describe(self) -> dict:
        tenants = {
            tenant_id: {
                "racks": [
                    {
                        "rack_id": rack.rack_id,
                        "pdu_id": rack.pdu_id,
                        "max_spot_w": rack.max_spot_w,
                    }
                    for _, rack in sorted(racks.items())
                ]
            }
            for tenant_id, racks in sorted(self.racks_of_tenant.items())
        }
        return {"ok": True, "op": "describe", "tenants": tenants}

    def status(self) -> dict:
        return {
            "ok": True,
            "op": "status",
            "next_slot": self._next,
            "slots": self.slots,
            "done": self._done,
            "pending": {
                str(slot): len(queue)
                for slot, queue in sorted(self._pending.items())
                if queue
            },
        }

    def result_for(self, slot) -> dict:
        if not isinstance(slot, int) or isinstance(slot, bool):
            return self._rejection(
                "result", "bad_request", "result requires an integer slot"
            )
        record = self._slot_records.get(slot)
        if record is None:
            return self._rejection(
                "result", "not_ready", f"slot {slot} has not cleared yet"
            )
        return {"ok": True, "op": "result", "record": record}

    def invoices(self) -> dict:
        if self._invoices is None:
            return self._rejection(
                "invoices",
                "not_ready",
                f"run incomplete: next slot is {self._next} of {self.slots}",
            )
        return {"ok": True, "op": "invoices", "invoices": self._invoices}

    def close(self) -> None:
        """Release journal/bid-log file handles."""
        self.journal.close()
        self.bidlog.close()


class DaemonServer:
    """Asyncio unix-socket transport around a :class:`MarketDaemon`.

    Args:
        daemon: The market state machine to serve.
        socket_path: Unix socket to listen on.
        tick_seconds: Wall-clock slot cadence.  ``None`` selects manual
            mode: slots clear only on client ``tick`` requests, giving a
            lockstep, fully deterministic schedule (the mode the chaos
            harness and CI byte-compare).
        stay_alive: Keep serving queries after the run completes (until
            a ``shutdown`` request) instead of exiting once done.
    """

    def __init__(
        self,
        daemon: MarketDaemon,
        socket_path: str | Path,
        tick_seconds: float | None = None,
        stay_alive: bool = True,
    ) -> None:
        if tick_seconds is not None and tick_seconds <= 0:
            raise ConfigurationError("tick_seconds must be positive")
        self.daemon = daemon
        self.socket_path = Path(socket_path)
        self.tick_seconds = tick_seconds
        self.stay_alive = stay_alive
        self.crash: OperatorCrash | None = None
        self._stop: asyncio.Event | None = None

    @property
    def manual(self) -> bool:
        """Whether slots clear on client ticks rather than wall clock."""
        return self.tick_seconds is None

    async def run(self) -> None:
        """Serve until shutdown (or run completion with stay_alive off).

        Raises:
            OperatorCrash: After shutting down, if an injected crash
                fault killed the slot loop (the caller decides the exit
                code; the CLI maps it to 3 with a resume hint).
        """
        self._stop = asyncio.Event()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            # A stale socket from a killed predecessor; rebinding
            # requires removing it first.
            self.socket_path.unlink()
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path)
        )
        ticker = None
        if not self.manual:
            ticker = asyncio.create_task(self._tick_loop())
        try:
            async with server:
                await self._stop.wait()
        finally:
            if ticker is not None:
                ticker.cancel()
                try:
                    await ticker
                except asyncio.CancelledError:
                    pass
            if self.socket_path.exists():
                self.socket_path.unlink()
            self.daemon.close()
        if self.crash is not None:
            raise self.crash

    def stop(self) -> None:
        """Request shutdown (idempotent)."""
        if self._stop is not None:
            self._stop.set()

    async def _tick_loop(self) -> None:
        while not self.daemon.done:
            await asyncio.sleep(self.tick_seconds)
            try:
                self.daemon.process_next_slot()
            except OperatorCrash as crash:
                self.crash = crash
                self.stop()
                return
        if not self.stay_alive:
            self.stop()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._dispatch(line)
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown (crash propagation) cancels pending handler
            # tasks; finishing quietly keeps the real error — the
            # OperatorCrash raised from run() — the only one reported.
            pass
        finally:
            writer.close()

    def _dispatch(self, line: bytes) -> dict:
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            return MarketDaemon._rejection("?", "bad_request", str(exc))
        op = message.get("op")
        daemon = self.daemon
        if op == "hello":
            return daemon.hello(self.manual)
        if op == "describe":
            return daemon.describe()
        if op == "submit":
            return daemon.handle_submit(message)
        if op == "status":
            return daemon.status()
        if op == "result":
            return daemon.result_for(message.get("slot"))
        if op == "invoices":
            return daemon.invoices()
        if op == "shutdown":
            self.stop()
            return {"ok": True, "op": "shutdown"}
        if op == "tick":
            return self._handle_tick()
        return MarketDaemon._rejection(
            op if isinstance(op, str) else "?",
            "unknown_op",
            f"unknown op {op!r}",
        )

    def _handle_tick(self) -> dict:
        if not self.manual:
            return MarketDaemon._rejection(
                "tick", "bad_request", "server clears on its own wall clock"
            )
        if self.daemon.done:
            return {"ok": True, "op": "tick", "done": True, "slot": None}
        try:
            record = self.daemon.process_next_slot()
        except OperatorCrash as crash:
            self.crash = crash
            self.stop()
            return MarketDaemon._rejection(
                "tick",
                "crashed",
                f"{crash} — restart with --resume",
            )
        return {
            "ok": True,
            "op": "tick",
            "slot": record["slot"],
            "done": self.daemon.done,
            "price": record["price"],
        }


def serve(
    scenario,
    slots: int,
    state_dir: str | Path,
    socket_path: str | Path,
    *,
    tick_seconds: float | None = None,
    stay_alive: bool = True,
    **daemon_kwargs,
) -> None:
    """Build a daemon and serve it until shutdown (blocking).

    Raises:
        OperatorCrash: If an injected crash fault killed the slot loop.
    """
    daemon = MarketDaemon(scenario, slots, state_dir, **daemon_kwargs)
    server = DaemonServer(
        daemon, socket_path, tick_seconds=tick_seconds, stay_alive=stay_alive
    )
    asyncio.run(server.run())
