"""The SpotDC market daemon: the spot market as an always-on service.

Batch mode (:meth:`repro.sim.engine.SimulationEngine.run`) simulates
tenants and market in one loop; this package runs the *same* slot-step
machinery as a long-lived service — bid bundles arrive from clients
over a unix socket, are screened at ingestion by the
:mod:`repro.recovery` admission front door, queue under a bounded
per-slot backlog, and clear on a slot tick.  Grants and invoices are
served back over the socket and journalled crash-safely:

* :mod:`repro.daemon.protocol` — the newline-delimited JSON wire
  protocol and machine-readable rejection codes;
* :mod:`repro.daemon.journal` — the write-ahead bid log and the market
  journal;
* :mod:`repro.daemon.server` — :class:`MarketDaemon` (the state
  machine) and :class:`DaemonServer` (the asyncio transport);
* :mod:`repro.daemon.client` — :class:`DaemonClient`, a retrying
  at-least-once client with idempotency keys;
* :mod:`repro.daemon.chaos` — the harness machine-checking the
  crash-safety invariant (kill anywhere, resume, byte-identical
  journal).
"""

from repro.daemon.client import DaemonClient, default_key
from repro.daemon.journal import BidLog, MarketJournal, read_records
from repro.daemon.protocol import (
    REJECTION_CODES,
    decode_line,
    encode_message,
    parse_submission,
    stored_tenant_bid,
)
from repro.daemon.server import (
    KILL_POINTS,
    DaemonServer,
    MarketDaemon,
    serve,
)

__all__ = [
    "BidLog",
    "DaemonClient",
    "DaemonServer",
    "KILL_POINTS",
    "MarketDaemon",
    "MarketJournal",
    "REJECTION_CODES",
    "decode_line",
    "default_key",
    "encode_message",
    "parse_submission",
    "read_records",
    "serve",
    "stored_tenant_bid",
]
