"""Crash-safe persistence for the market daemon.

Two append-only NDJSON files under the daemon's state directory:

* ``bids.jsonl`` — the **write-ahead bid log**: every *accepted*
  submission is appended (and flushed) *before* the client's ack goes
  out.  On resume, replaying accepted entries in file order through the
  same bounded-queue logic rebuilds the pending queues, the shed
  sequence, and the idempotency-key map exactly.
* ``market.jsonl`` — the **market journal**: one record per cleared
  slot (price, grants, payments, sheds), appended and flushed *before*
  the slot's checkpoint is written, plus a final invoices record after
  the run completes.  The journal is the daemon's output of record —
  the crash-safety invariant is that its bytes are identical whether or
  not the process was ever killed.

Why flush-before-ack/checkpoint is enough: a SIGKILL discards
Python-level file buffers but not the OS page cache, so anything
``flush()``-ed survives the process dying at any instant (machine-level
power loss would additionally need ``fsync``; the invariant we pin is
process-kill, the failure the chaos harness injects).

Recovery truncation: after a crash, the journal may hold a partial
trailing line (killed mid-``write``) or records *newer* than the
checkpoint being resumed from (killed after journalling slot ``k+1``
but before its checkpoint).  :meth:`MarketJournal.truncate_to_slot`
drops both; the replayed slots then re-append byte-identical records.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

__all__ = ["BidLog", "MarketJournal", "read_records"]


def _encode(record: dict) -> str:
    return json.dumps(record, sort_keys=True) + "\n"


def read_records(path: str | Path) -> list[dict]:
    """All complete records in an NDJSON file (missing file = empty).

    A torn trailing write — the signature of a process killed
    mid-``write`` — is skipped with a :class:`UserWarning`, whether the
    kill left the partial record unterminated (no final newline) or a
    filesystem truncation cut the record mid-byte while a newline
    survived.  Only the *final* line gets that forgiveness: an
    unparseable line with complete records after it is real corruption,
    not a crash artifact, and still raises.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    data = path.read_text(encoding="utf-8")
    complete, sep, partial = data.rpartition("\n")
    if partial:
        warnings.warn(
            f"{path}: dropping torn trailing record "
            f"({len(partial)} bytes after the last newline)",
            stacklevel=2,
        )
    if not sep:
        return []
    lines = [line for line in complete.split("\n") if line]
    for i, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1 and not partial:
                warnings.warn(
                    f"{path}: dropping unparseable final record "
                    f"(torn write: {line[:60]!r}...)",
                    stacklevel=2,
                )
                break
            raise
    return records


class _AppendLog:
    """Append-only NDJSON file with explicit flush-on-append."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Append one record and flush it to the OS (crash-durable)."""
        self._fh.write(_encode(record))
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def read(self) -> list[dict]:
        """All complete records currently in the file."""
        return read_records(self.path)

    def _rewrite(self, records: list[dict]) -> None:
        """Atomically replace the file's contents with ``records``."""
        self._fh.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(_encode(record))
            fh.flush()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")


class BidLog(_AppendLog):
    """The write-ahead log of accepted submissions (``bids.jsonl``).

    Entries are the canonical stored submission form
    (:func:`repro.daemon.protocol.parse_submission`) wrapped as
    ``{"kind": "accept", **stored}``.  The log is never truncated on
    resume — replay skips entries for already-cleared slots by itself —
    so a resumed daemon keeps appending to the same file.
    """

    def accept(self, stored: dict) -> None:
        """Persist one accepted submission before it is acked."""
        self.append({"kind": "accept", **stored})

    def accepted(self) -> list[dict]:
        """All accepted submissions, in acceptance order."""
        return [r for r in self.read() if r.get("kind") == "accept"]


class MarketJournal(_AppendLog):
    """The per-slot market journal (``market.jsonl``)."""

    def slot_records(self) -> dict[int, dict]:
        """Cleared-slot records currently journalled, by slot."""
        return {
            r["slot"]: r for r in self.read() if r.get("kind") == "slot"
        }

    def invoices_record(self) -> dict | None:
        """The final invoices record, if the run completed."""
        for record in self.read():
            if record.get("kind") == "invoices":
                return record
        return None

    def truncate_to_slot(self, last_slot: int) -> dict[int, dict]:
        """Drop records newer than ``last_slot`` (and any torn line).

        Called on resume with the checkpoint's last completed slot;
        keeps exactly the records the resumed run will *not* replay and
        returns them by slot.  The invoices record only survives when
        every slot did (a run that checkpointed mid-horizon cannot have
        legitimately finished).
        """
        records = self.read()
        kept = [
            r
            for r in records
            if r.get("kind") == "slot" and r["slot"] <= last_slot
        ]
        self._rewrite(kept)
        return {r["slot"]: r for r in kept}
