"""Chaos harness machine-checking the daemon's crash-safety invariant.

The invariant (ISSUE/ROADMAP wording): kill the daemon at any point —
mid-slot, via an injected :class:`~repro.resilience.faults.CrashFault`
or a raw SIGKILL — restart it with ``--resume``, and the market journal
and invoices are **byte-identical** to the same-seed run that was never
interrupted; duplicate deliveries of the same submission key never
change settlement totals.

:func:`drive_daemon_run` plays a full deterministic client session
against an in-process daemon (manual-tick lockstep, so the per-slot bid
sets cannot depend on wall-clock races), restarting with ``resume=True``
every time an injected crash kills the slot loop, optionally
re-delivering every submission (same idempotency keys) both mid-run and
after each restart.  :func:`check_crash_safety` runs the
reference/chaos pair and raises :class:`~repro.errors.DaemonError` on
any divergence — the machine check the tests and CI smoke job call.

SIGKILL coverage uses real processes (``spotdc serve --kill-at``, which
``os.kill``-s itself with ``SIGKILL``); see the CI daemon-smoke job and
``tests/test_daemon_chaos.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.daemon.client import DaemonClient
from repro.daemon.server import DEFAULT_MAX_PENDING, DaemonServer, MarketDaemon
from repro.errors import DaemonError, OperatorCrash
from repro.resilience.faults import CrashFault, FaultInjector

__all__ = [
    "ChaosOutcome",
    "InProcessServer",
    "check_crash_safety",
    "drive_daemon_run",
    "short_socket_path",
    "synthetic_bundle",
]


def short_socket_path(name: str = "daemon.sock") -> Path:
    """A unix-socket path safely under the ~104-byte ``sun_path`` limit.

    Pytest tmp dirs routinely blow that limit, so sockets live in a
    fresh short ``/tmp`` directory instead of next to the state dir.
    """
    return Path(tempfile.mkdtemp(prefix="spotdc-")) / name


def synthetic_bundle(seed: int, tenant_id: str, slot: int, rack_infos) -> list[dict]:
    """A deterministic wire-form bid bundle for one tenant and slot.

    Seeded by the *string* ``"{seed}:{tenant_id}:{slot}"`` —
    :class:`random.Random` string seeding hashes stably (unlike
    ``hash()``), so the same bundle is generated across processes and
    interpreter runs.

    Args:
        seed: Session seed.
        tenant_id: The bidding tenant.
        slot: Target slot.
        rack_infos: ``[{"rack_id", "max_spot_w"}, ...]`` from the
            daemon's ``describe`` response; demands are drawn inside
            each rack's physical spot headroom so admission accepts
            them.
    """
    rng = random.Random(f"{seed}:{tenant_id}:{slot}")
    racks = []
    for info in rack_infos:
        cap = float(info["max_spot_w"])
        d_max = round(cap * rng.uniform(0.3, 0.95), 3)
        d_min = round(d_max * rng.uniform(0.2, 0.7), 3)
        q_min = round(rng.uniform(0.02, 0.08), 5)
        q_max = round(q_min + rng.uniform(0.01, 0.1), 5)
        racks.append(
            {
                "rack_id": info["rack_id"],
                "demand": {
                    "kind": "linear",
                    "d_max_w": d_max,
                    "q_min": q_min,
                    "d_min_w": d_min,
                    "q_max": q_max,
                },
            }
        )
    return racks


class InProcessServer:
    """A :class:`DaemonServer` on a background thread with its own loop.

    Lets tests and the chaos harness run client and daemon in one
    process; an :class:`~repro.errors.OperatorCrash` escaping the slot
    loop lands in :attr:`crash` instead of killing the test process.
    """

    def __init__(self, daemon: MarketDaemon, socket_path: str | Path) -> None:
        self.server = DaemonServer(daemon, socket_path, tick_seconds=None)
        self.crash: OperatorCrash | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self.server.run())
        except OperatorCrash as crash:
            self.crash = crash

    def start(self, *, bind_budget: float = 10.0) -> "InProcessServer":
        """Start serving; returns once the socket is accepting."""
        self._thread.start()
        deadline = time.monotonic() + bind_budget
        path = Path(self.server.socket_path)
        while not path.exists():
            if not self._thread.is_alive():
                raise DaemonError("daemon server thread died before binding")
            if time.monotonic() >= deadline:
                raise DaemonError(
                    f"daemon socket {path} not bound within {bind_budget}s"
                )
            time.sleep(0.005)
        return self

    def join(self, timeout: float = 30.0) -> None:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise DaemonError("daemon server thread failed to stop")


@dataclasses.dataclass
class ChaosOutcome:
    """What one driven daemon session produced.

    Attributes:
        journal: Raw bytes of ``market.jsonl`` — the byte-identity
            subject.
        invoices: Per-tenant invoice totals from the daemon.
        restarts: How many times the daemon crashed and was resumed.
        duplicates: How many redeliveries (same key) were absorbed.
    """

    journal: bytes
    invoices: dict
    restarts: int
    duplicates: int


def _fault_model(fault_profile, crash_slots, seed):
    """An injector for one daemon incarnation.

    Always returns an injector — even a source-less one — because the
    engine activates the degradation controller exactly when a fault
    model is present, and the reference/chaos pair must agree on that:
    a crash-only chaos run compared against a ``fault_model=None``
    reference would differ in *enforcement*, not crash recovery.
    """
    sources = list(fault_profile.sources()) if fault_profile is not None else []
    sources += [CrashFault(s) for s in sorted(crash_slots)]
    if fault_profile is not None and fault_profile.seed is not None:
        seed = fault_profile.seed
    return FaultInjector(sources, seed=seed)


def drive_daemon_run(
    scenario_factory,
    slots: int,
    state_dir: str | Path,
    *,
    socket_path: str | Path | None = None,
    bundle_seed: int = 0,
    crash_slots=(),
    fault_profile=None,
    redeliver: bool = False,
    max_pending: int = DEFAULT_MAX_PENDING,
) -> ChaosOutcome:
    """Drive one daemon session to completion, resuming across crashes.

    Submits a full synthetic bid plan (every tenant, every market slot,
    keys ``"{tenant}:{slot}"``) up front, then ticks the manual-mode
    daemon through its horizon.  Each :class:`CrashFault` in
    ``crash_slots`` kills the slot loop; the harness then restarts the
    daemon on the same state directory with ``resume=True`` and — when
    ``redeliver`` is set — re-sends *every* submission with its original
    key, which the idempotency map must absorb without touching market
    state.

    Args:
        scenario_factory: Zero-argument callable returning a fresh
            scenario (called once per daemon incarnation — a resumed
            engine is adopted from the checkpoint, so the fresh
            scenario only seeds construction).
        slots: Run horizon.
        state_dir: Daemon state directory (journal, WAL, checkpoints).
        socket_path: Unix socket; defaults to a fresh short path.
        bundle_seed: Seed for :func:`synthetic_bundle`.
        crash_slots: Slots at which an injected crash kills the daemon.
        fault_profile: Optional extra fault channels (duplicate
            delivery, bid loss, ...) active in *both* reference and
            chaos runs.
        redeliver: Re-send every submission once mid-run and after each
            restart (duplicate-delivery exercise).
        max_pending: Per-slot ingestion queue bound.

    Raises:
        DaemonError: On any protocol-level surprise (a redelivery whose
            response differs from the stored ack, an unexpected
            rejection, a tick failure that is not the injected crash).
    """
    socket_path = (
        short_socket_path() if socket_path is None else Path(socket_path)
    )
    scenario_seed = scenario_factory().seed
    plan: list[tuple[str, int, list[dict]]] = []
    restarts = 0
    duplicates = 0
    submitted = False
    while True:
        daemon = MarketDaemon(
            scenario_factory(),
            slots,
            state_dir,
            fault_model=_fault_model(fault_profile, crash_slots, scenario_seed),
            max_pending=max_pending,
            resume=restarts > 0,
        )
        server = InProcessServer(daemon, socket_path).start()
        client = DaemonClient(socket_path, seed=bundle_seed)
        outcome = None
        invoices = None
        try:
            if not submitted:
                directory = client.describe()["tenants"]
                for slot in range(1, slots):
                    for tenant_id, info in sorted(directory.items()):
                        plan.append(
                            (
                                tenant_id,
                                slot,
                                synthetic_bundle(
                                    bundle_seed, tenant_id, slot, info["racks"]
                                ),
                            )
                        )
                for tenant_id, slot, racks in plan:
                    first = client.submit(tenant_id, slot, racks)
                    if not first.get("ok"):
                        raise DaemonError(f"submission rejected: {first!r}")
                    if redeliver:
                        again = client.submit(tenant_id, slot, racks)
                        if again != first:
                            raise DaemonError(
                                f"redelivery not idempotent: {again!r} "
                                f"!= {first!r}"
                            )
                        duplicates += 1
                submitted = True
            elif redeliver:
                # Post-restart redelivery: every key must resolve from
                # the rebuilt idempotency map — cleared slots included.
                for tenant_id, slot, racks in plan:
                    response = client.submit(tenant_id, slot, racks)
                    code = response.get("error", {}).get("code")
                    if not response.get("ok") and code != "shed":
                        raise DaemonError(
                            f"post-resume redelivery of {tenant_id}:{slot} "
                            f"was not absorbed: {response!r}"
                        )
                    duplicates += 1
            while True:
                response = client.tick()
                if response.get("ok"):
                    if response.get("done"):
                        invoices = client.invoices()["invoices"]
                        client.shutdown()
                        outcome = "done"
                        break
                    continue
                code = response.get("error", {}).get("code")
                if code == "crashed":
                    outcome = "crashed"
                    break
                raise DaemonError(f"tick failed unexpectedly: {response!r}")
        finally:
            client.close()
        server.join()
        if outcome == "done":
            journal = (Path(state_dir) / "market.jsonl").read_bytes()
            return ChaosOutcome(
                journal=journal,
                invoices=invoices,
                restarts=restarts,
                duplicates=duplicates,
            )
        restarts += 1


def check_crash_safety(
    work_dir: str | Path,
    *,
    seed: int = 0,
    slots: int = 10,
    crash_slots=(4, 7),
    fault_profile=None,
    redeliver: bool = True,
    scenario_factory=None,
    events_profile=None,
) -> dict:
    """Machine-check the crash-safety invariant; raises on divergence.

    Runs the same synthetic session twice — uninterrupted, then crashed
    at every slot in ``crash_slots`` and resumed — and demands a
    byte-identical market journal and equal invoices.

    Args:
        events_profile: Optional
            :class:`~repro.events.EventProfile` applied to the (default
            testbed) scenario of both runs.  Crash slots placed inside
            an event window then exercise mid-event resume: the shock
            absorber's cuts, ladder state, and compliance watches must
            replay from the checkpoint byte-identically.

    Returns:
        A report dict (``restarts``, ``duplicates``, journal size) for
        logging.

    Raises:
        DaemonError: If the journals differ, the invoices differ, or
            the chaos run did not actually restart.
    """
    work_dir = Path(work_dir)
    if scenario_factory is None:
        from repro.sim.scenario import testbed_scenario

        def scenario_factory():
            return testbed_scenario(seed=seed)

    if events_profile is not None:
        import dataclasses as _dc

        base_factory = scenario_factory

        def scenario_factory():
            return _dc.replace(base_factory(), events=events_profile)

    reference = drive_daemon_run(
        scenario_factory,
        slots,
        work_dir / "reference",
        bundle_seed=seed,
        fault_profile=fault_profile,
    )
    chaos = drive_daemon_run(
        scenario_factory,
        slots,
        work_dir / "chaos",
        bundle_seed=seed,
        crash_slots=crash_slots,
        fault_profile=fault_profile,
        redeliver=redeliver,
    )
    if crash_slots and chaos.restarts != len(tuple(crash_slots)):
        raise DaemonError(
            f"chaos run restarted {chaos.restarts} times, expected "
            f"{len(tuple(crash_slots))}"
        )
    if chaos.journal != reference.journal:
        raise DaemonError(
            "crash-safety invariant violated: market journal diverged "
            f"({len(reference.journal)} vs {len(chaos.journal)} bytes)"
        )
    if chaos.invoices != reference.invoices:
        raise DaemonError(
            "duplicate-delivery invariant violated: invoices diverged "
            f"({reference.invoices!r} vs {chaos.invoices!r})"
        )
    return {
        "slots": slots,
        "restarts": chaos.restarts,
        "duplicates": chaos.duplicates,
        "journal_bytes": len(reference.journal),
        "tenants": len(reference.invoices),
    }
