"""Pluggable spot-capacity forecasting signals with confidence bands.

The paper's operator predicts next-slot spot capacity with one
hard-coded rule (Section III-C: current draw vs. guaranteed capacity,
scaled by a scalar under-prediction factor).  Production autoscalers
instead treat the forecast as a first-class *signal*: an object that
turns telemetry into a prediction, swapped without touching the control
loop.  This module is that seam.

Every signal answers one question per slot — *how much headroom will
each PDU (and the UPS) have next slot?* — and answers it twice:

* a **point forecast** (a :class:`~repro.prediction.spot.SpotCapacityForecast`),
  which is what the paper's operator releases to the market, and
* a **confidence band**: a piecewise-linear quantile function over the
  same per-PDU/UPS headrooms.  ``at_quantile(q)`` is the headroom value
  with probability ``q`` of *overcommitting* — exceeding the headroom
  that actually materialises.  Small ``q`` is conservative, large ``q``
  optimistic, and the values are non-decreasing in ``q`` by
  construction.

All signals route the headroom arithmetic through the paper's
:class:`~repro.prediction.spot.SpotCapacityPredictor` (Eqs. 3-4 with
the safety margin and under-prediction factor) — signals differ only in
the per-rack *reference power* they feed it and in how they widen the
result into a band.  That keeps exactly one forecast-producing code
path in the tree and makes :class:`CurrentDrawSignal` float-identical
to the rule the engine previously built inline.

See docs/forecasting.md for band semantics and how to add a signal.
"""

from __future__ import annotations

import abc
import dataclasses
from statistics import NormalDist

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.spot import SpotCapacityForecast, SpotCapacityPredictor

__all__ = [
    "SIGNAL_NAMES",
    "Ar1Signal",
    "BandedForecast",
    "CurrentDrawSignal",
    "MovingAverageSignal",
    "QuantileEnsembleSignal",
    "RollingMaxSignal",
    "Signal",
    "build_signal",
]

#: Quantile knots every banded signal publishes.  Between knots the
#: band interpolates linearly; outside them it clamps to the edge knot.
BAND_LEVELS = (0.05, 0.25, 0.5, 0.75, 0.95)

_Z_SCORES = tuple(NormalDist().inv_cdf(q) for q in BAND_LEVELS)


class BandedForecast:
    """A point forecast plus its quantile band for one upcoming slot.

    Plain ``__slots__`` class (not a dataclass): the default signal
    constructs one per slot on the engine's hot path, and the bench
    pins the whole predict phase at <2% overhead vs. the old inline
    rule.

    Attributes:
        point: The released-by-default forecast (the paper's rule for
            :class:`CurrentDrawSignal`; the band median for banded
            signals).
        usable_fraction: ``1 - safety_margin_fraction`` of physical
            capacity — the hard ceiling any release is clamped to.
        quantiles: Sorted band knot levels, ``()`` for a degenerate
            (point-only) band.
        pdu_quantiles: Per-PDU headroom values at each knot level.
        ups_quantiles: UPS headroom values at each knot level.
    """

    __slots__ = (
        "point",
        "usable_fraction",
        "quantiles",
        "pdu_quantiles",
        "ups_quantiles",
    )

    def __init__(
        self,
        point: SpotCapacityForecast,
        usable_fraction: float = 1.0,
        quantiles: tuple = (),
        pdu_quantiles: "dict[str, tuple] | None" = None,
        ups_quantiles: tuple = (),
    ) -> None:
        self.point = point
        self.usable_fraction = usable_fraction
        self.quantiles = quantiles
        self.pdu_quantiles = pdu_quantiles or {}
        self.ups_quantiles = ups_quantiles

    @property
    def has_band(self) -> bool:
        """Whether this forecast carries a non-degenerate band."""
        return bool(self.quantiles)

    def at_quantile(self, q: float) -> SpotCapacityForecast:
        """Headroom released when accepting overcommit probability ``q``.

        Piecewise-linear interpolation over the band knots, clamped to
        the edge knots outside their range.  A degenerate band returns
        the point forecast for every ``q``.
        """
        if not 0 < q <= 1:
            raise ConfigurationError(f"risk quantile must be in (0, 1], got {q}")
        if not self.quantiles:
            return self.point
        levels = self.quantiles
        return SpotCapacityForecast(
            pdu_spot_w={
                pdu_id: float(np.interp(q, levels, values))
                for pdu_id, values in self.pdu_quantiles.items()
            },
            ups_spot_w=float(np.interp(q, levels, self.ups_quantiles)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BandedForecast(point={self.point!r}, "
            f"quantiles={self.quantiles!r})"
        )


class Signal(abc.ABC):
    """Interface every forecasting signal implements.

    Subclasses provide per-rack :meth:`references` (what the predictor
    subtracts from physical capacity) and optionally a :meth:`band`
    that widens the point forecast into quantile knots.  The shared
    :meth:`forecast_slot` handles slot 0 (no telemetry yet — zero
    forecast, exactly as the engine always has) and routes everything
    else through :class:`~repro.prediction.spot.SpotCapacityPredictor`.
    """

    #: Registry name; also the scenario-spec / CLI identifier.
    name = "signal"

    under_prediction_factor: float
    safety_margin_fraction: float
    window: int

    @property
    def usable_fraction(self) -> float:
        """Fraction of physical capacity the market may ever see."""
        return 1.0 - self.safety_margin_fraction

    def forecast_slot(self, topology, requesting, monitor, slot: int) -> BandedForecast:
        """Forecast next-slot headroom from the monitor's telemetry.

        Args:
            topology: Facility with current rack power samples recorded.
            requesting: Rack ids bidding for (or holding) spot capacity.
            monitor: :class:`~repro.infrastructure.monitor.PowerMonitor`
                with the metered history up to and including this slot.
            slot: Index of the slot being cleared (0 ⇒ no history yet).
        """
        if slot == 0:
            return BandedForecast(
                point=SpotCapacityForecast(
                    pdu_spot_w={p: 0.0 for p in topology.pdus},
                    ups_spot_w=0.0,
                ),
                usable_fraction=self.usable_fraction,
            )
        references = self.references(topology, monitor)
        point = self.predictor.forecast(topology, requesting, references)
        return self.band(point, topology, requesting, monitor)

    @abc.abstractmethod
    def references(self, topology, monitor) -> dict:
        """Per-rack reference power fed to the capacity predictor."""

    def band(self, point, topology, requesting, monitor) -> BandedForecast:
        """Widen a point forecast into a band (degenerate by default)."""
        return BandedForecast(point=point, usable_fraction=self.usable_fraction)


@dataclasses.dataclass
class _PredictorSignal(Signal):
    """Shared config + validation for the built-in signals."""

    under_prediction_factor: float = 1.0
    safety_margin_fraction: float = 0.025
    window: int = 5

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"signal window must be >= 1, got {self.window}")
        # Validates factor/margin ranges; shared by every signal.
        self.predictor = SpotCapacityPredictor(
            under_prediction_factor=self.under_prediction_factor,
            safety_margin_fraction=self.safety_margin_fraction,
        )

    def _gaussian_band(self, point, topology, pdu_sigma, ups_sigma) -> BandedForecast:
        """Symmetric Gaussian knots around the point forecast.

        Sigmas are in watts of aggregate draw; they scale by the
        under-prediction factor so the band tightens with the point.
        """
        factor = self.under_prediction_factor
        pdu_quantiles = {}
        for pdu_id, headroom in point.pdu_spot_w.items():
            sigma = pdu_sigma.get(pdu_id, 0.0) * factor
            pdu_quantiles[pdu_id] = tuple(
                max(0.0, headroom + z * sigma) for z in _Z_SCORES
            )
        ups_quantiles = tuple(
            max(0.0, point.ups_spot_w + z * ups_sigma * factor) for z in _Z_SCORES
        )
        return BandedForecast(
            point=point,
            usable_fraction=self.usable_fraction,
            quantiles=BAND_LEVELS,
            pdu_quantiles=pdu_quantiles,
            ups_quantiles=ups_quantiles,
        )


@dataclasses.dataclass
class CurrentDrawSignal(_PredictorSignal):
    """The paper's rule (Section III-C), verbatim.

    Reference power is each rack's recent metered maximum over
    ``window`` slots — exactly what the engine built inline before this
    subsystem existed, so default-path traces stay byte-identical.  The
    band is degenerate: the paper's operator has a point estimate only.
    """

    name = "current_draw"

    def references(self, topology, monitor) -> dict:
        window = self.window
        return {
            rack_id: monitor.rack_recent_max_w(rack_id, window)
            for rack_id in topology.racks
        }


@dataclasses.dataclass
class RollingMaxSignal(_PredictorSignal):
    """Conservative long-window peak reference.

    Like :class:`CurrentDrawSignal` but over a longer window (default
    30 slots), so a rack's reference covers any draw it has reached in
    the last half hour of one-minute slots.  The band spans from this
    conservative point up to the short-window (current-draw) forecast:
    releasing at high ``q`` recovers the paper's behaviour, low ``q``
    keeps the long-window floor.
    """

    name = "rolling_max"
    window: int = 30

    #: Short window used for the optimistic edge of the band.
    SHORT_WINDOW = 5

    def references(self, topology, monitor) -> dict:
        window = self.window
        return {
            rack_id: monitor.rack_recent_max_w(rack_id, window)
            for rack_id in topology.racks
        }

    def band(self, point, topology, requesting, monitor) -> BandedForecast:
        short_refs = {
            rack_id: monitor.rack_recent_max_w(rack_id, self.SHORT_WINDOW)
            for rack_id in topology.racks
        }
        high = self.predictor.forecast(topology, requesting, short_refs)
        # Short-window references are pointwise <= long-window ones, so
        # `high` headrooms are pointwise >= the point: knots are sorted.
        levels = (0.5, 1.0)
        return BandedForecast(
            point=point,
            usable_fraction=self.usable_fraction,
            quantiles=levels,
            pdu_quantiles={
                pdu_id: (value, high.pdu_spot_w[pdu_id])
                for pdu_id, value in point.pdu_spot_w.items()
            },
            ups_quantiles=(point.ups_spot_w, high.ups_spot_w),
        )


@dataclasses.dataclass
class MovingAverageSignal(_PredictorSignal):
    """Windowed mean reference with a Gaussian band.

    Reference power is each rack's mean draw over the window — less
    conservative than a recent max — and the band widens by the
    within-window standard deviation of each PDU's aggregate draw
    (racks on one PDU move together under correlated load, so the
    aggregate deviation is the right width, not a per-rack sum).
    """

    name = "moving_average"
    window: int = 12

    def references(self, topology, monitor) -> dict:
        window = self.window
        references = {}
        for rack_id in topology.racks:
            series = monitor.rack_series(rack_id)
            tail = series[-window:]
            references[rack_id] = float(tail.mean()) if tail.size else 0.0
        return references

    def band(self, point, topology, requesting, monitor) -> BandedForecast:
        pdu_sigma = {}
        for pdu_id in topology.pdus:
            tail = monitor.pdu_series(pdu_id)[-self.window :]
            pdu_sigma[pdu_id] = float(tail.std()) if tail.size >= 2 else 0.0
        ups_tail = monitor.ups_series()[-self.window :]
        ups_sigma = float(ups_tail.std()) if ups_tail.size >= 2 else 0.0
        return self._gaussian_band(point, topology, pdu_sigma, ups_sigma)


@dataclasses.dataclass
class Ar1Signal(_PredictorSignal):
    """Per-rack AR(1) one-step prediction with a residual-width band.

    Fits ``x_{t+1} - mu = phi (x_t - mu) + e`` per rack over the window
    (lag-1 autocorrelation estimate of ``phi``, clipped to [0, 0.99]);
    the reference is the one-step conditional mean and the band width
    aggregates the per-rack residual variances up each PDU and the UPS
    (independent residuals: variances add).
    """

    name = "ar1"
    window: int = 60

    def references(self, topology, monitor) -> dict:
        references = {}
        self._residual_var = {}
        for rack_id in topology.racks:
            tail = monitor.rack_series(rack_id)[-self.window :]
            if tail.size < 3:
                references[rack_id] = float(tail[-1]) if tail.size else 0.0
                self._residual_var[rack_id] = 0.0
                continue
            mu = float(tail.mean())
            centred = tail - mu
            denom = float(np.dot(centred[:-1], centred[:-1]))
            phi = float(np.dot(centred[1:], centred[:-1]) / denom) if denom > 0 else 0.0
            phi = min(max(phi, 0.0), 0.99)
            references[rack_id] = mu + phi * float(centred[-1])
            residuals = centred[1:] - phi * centred[:-1]
            self._residual_var[rack_id] = float(residuals.var())
        return references

    def band(self, point, topology, requesting, monitor) -> BandedForecast:
        residual_var = getattr(self, "_residual_var", {})
        pdu_sigma = {}
        total_var = 0.0
        for pdu_id, pdu in topology.pdus.items():
            var = sum(residual_var.get(rid, 0.0) for rid in pdu.rack_ids)
            pdu_sigma[pdu_id] = var**0.5
            total_var += var
        return self._gaussian_band(point, topology, pdu_sigma, total_var**0.5)


@dataclasses.dataclass
class QuantileEnsembleSignal(_PredictorSignal):
    """Empirical-quantile ensemble over member signals.

    The point reference is the per-rack *median* of the member signals'
    references (default members: current-draw, rolling-max, moving
    average, AR(1)).  The band is distribution-free: empirical
    quantiles of the last ``band_window`` slot-to-slot *innovations*
    ``e_t = x_t - x_{t-1}`` of each PDU's (and the UPS's) aggregate
    draw.  Releasing at risk ``q`` subtracts the ``(1-q)``-innovation
    quantile from the point headroom, so under i.i.d. innovations the
    empirical coverage ``P(realised headroom >= release)`` matches
    ``1 - q`` — the property the coverage test pins.
    """

    name = "ensemble"

    #: Trailing innovation window the empirical quantiles are taken over.
    band_window: int = 200

    members: "tuple | None" = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.members is None:
            kwargs = dict(
                under_prediction_factor=self.under_prediction_factor,
                safety_margin_fraction=self.safety_margin_fraction,
            )
            self.members = (
                CurrentDrawSignal(window=self.window, **kwargs),
                RollingMaxSignal(**kwargs),
                MovingAverageSignal(**kwargs),
                Ar1Signal(**kwargs),
            )

    def references(self, topology, monitor) -> dict:
        member_refs = [m.references(topology, monitor) for m in self.members]
        return {
            rack_id: float(np.median([refs[rack_id] for refs in member_refs]))
            for rack_id in topology.racks
        }

    def _innovation_offsets(self, series) -> "np.ndarray | None":
        innovations = np.diff(series[-(self.band_window + 1) :])
        if innovations.size < 2:
            return None
        # Offset at knot level q: minus the (1-q)-innovation quantile.
        return -np.quantile(innovations, [1.0 - q for q in BAND_LEVELS])

    def band(self, point, topology, requesting, monitor) -> BandedForecast:
        factor = self.under_prediction_factor
        pdu_quantiles = {}
        degenerate = False
        for pdu_id, headroom in point.pdu_spot_w.items():
            offsets = self._innovation_offsets(monitor.pdu_series(pdu_id))
            if offsets is None:
                degenerate = True
                break
            pdu_quantiles[pdu_id] = tuple(
                max(0.0, headroom + off * factor) for off in offsets
            )
        ups_offsets = self._innovation_offsets(monitor.ups_series())
        if degenerate or ups_offsets is None:
            return BandedForecast(point=point, usable_fraction=self.usable_fraction)
        ups_quantiles = tuple(
            max(0.0, point.ups_spot_w + off * factor) for off in ups_offsets
        )
        return BandedForecast(
            point=point,
            usable_fraction=self.usable_fraction,
            quantiles=BAND_LEVELS,
            pdu_quantiles=pdu_quantiles,
            ups_quantiles=ups_quantiles,
        )


SIGNAL_CLASSES = {
    CurrentDrawSignal.name: CurrentDrawSignal,
    RollingMaxSignal.name: RollingMaxSignal,
    MovingAverageSignal.name: MovingAverageSignal,
    Ar1Signal.name: Ar1Signal,
    QuantileEnsembleSignal.name: QuantileEnsembleSignal,
}

#: Spec/CLI-facing signal identifiers, registration order.
SIGNAL_NAMES = tuple(SIGNAL_CLASSES)


def build_signal(
    name: str,
    *,
    under_prediction_factor: float = 1.0,
    safety_margin_fraction: float = 0.025,
    window: "int | None" = None,
) -> Signal:
    """Instantiate a registered signal by its spec/CLI name.

    ``window=None`` keeps each signal's own default (current-draw 5,
    rolling-max 30, moving-average 12, AR(1) 60).
    """
    try:
        cls = SIGNAL_CLASSES[name]
    except KeyError:
        known = ", ".join(SIGNAL_NAMES)
        raise ConfigurationError(
            f"unknown forecasting signal {name!r} (known: {known})"
        ) from None
    kwargs = dict(
        under_prediction_factor=under_prediction_factor,
        safety_margin_fraction=safety_margin_fraction,
    )
    if window is not None:
        kwargs["window"] = window
    return cls(**kwargs)
