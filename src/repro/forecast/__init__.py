"""Pluggable forecasting signals and risk-aware capacity release.

The seam between telemetry and the market: a :class:`Signal` turns the
power monitor's history into a point forecast plus a confidence band
(:class:`BandedForecast`), and a :class:`RiskAwareReleasePolicy`
decides how much of that band the operator actually sells.  The
paper's hard-coded rule survives as :class:`CurrentDrawSignal`, the
default, with byte-identical traces.  See docs/forecasting.md.
"""

from repro.forecast.profile import PredictionProfile
from repro.forecast.release import RiskAwareReleasePolicy
from repro.forecast.signals import (
    BAND_LEVELS,
    SIGNAL_NAMES,
    Ar1Signal,
    BandedForecast,
    CurrentDrawSignal,
    MovingAverageSignal,
    QuantileEnsembleSignal,
    RollingMaxSignal,
    Signal,
    build_signal,
)

__all__ = [
    "BAND_LEVELS",
    "SIGNAL_NAMES",
    "Ar1Signal",
    "BandedForecast",
    "CurrentDrawSignal",
    "MovingAverageSignal",
    "PredictionProfile",
    "QuantileEnsembleSignal",
    "RiskAwareReleasePolicy",
    "RollingMaxSignal",
    "Signal",
    "build_signal",
]
