"""Declarative prediction configuration.

:class:`PredictionProfile` is the plain-data form of "which signal, how
conservative, at what risk" — the object a scenario spec's
``prediction`` block loads into, carried on
:class:`~repro.sim.scenario.Scenario` and materialised by the engine
into a live :class:`~repro.forecast.signals.Signal` +
:class:`~repro.forecast.release.RiskAwareReleasePolicy` pair.  Frozen
and hashable so scenarios stay picklable and sweep cells stay
comparable.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.forecast.release import RiskAwareReleasePolicy
from repro.forecast.signals import SIGNAL_NAMES, Signal, build_signal

__all__ = ["PredictionProfile"]


@dataclasses.dataclass(frozen=True)
class PredictionProfile:
    """Declarative knobs for the predict phase of a scenario.

    Args:
        signal: Registered signal name (``current_draw`` is the paper's
            rule and the default).
        under_prediction_factor: Scalar haircut in (0, 1] applied to
            every headroom (Fig. 17's axis).
        safety_margin_fraction: Capacity fraction in [0, 1) withheld
            from the market at every level.
        window: Telemetry window (slots) the signal's references use,
            or ``None`` for each signal's own default.
        risk_quantile: Overcommit quantile in (0, 1] to release at, or
            ``None`` to release the point forecast (paper behaviour).
    """

    signal: str = "current_draw"
    under_prediction_factor: float = 1.0
    safety_margin_fraction: float = 0.025
    window: "int | None" = None
    risk_quantile: "float | None" = None

    def __post_init__(self) -> None:
        if self.signal not in SIGNAL_NAMES:
            known = ", ".join(SIGNAL_NAMES)
            raise ConfigurationError(
                f"unknown forecasting signal {self.signal!r} (known: {known})"
            )
        if self.window is not None and self.window < 1:
            raise ConfigurationError(
                f"prediction window must be >= 1, got {self.window}"
            )
        # Range checks shared with the live objects, applied eagerly so
        # a bad profile fails at load time, not mid-simulation.
        build_signal(
            self.signal,
            under_prediction_factor=self.under_prediction_factor,
            safety_margin_fraction=self.safety_margin_fraction,
            window=self.window,
        )
        RiskAwareReleasePolicy(risk_quantile=self.risk_quantile)

    def build_signal(self) -> Signal:
        """The live signal this profile describes."""
        return build_signal(
            self.signal,
            under_prediction_factor=self.under_prediction_factor,
            safety_margin_fraction=self.safety_margin_fraction,
            window=self.window,
        )

    def build_policy(self) -> RiskAwareReleasePolicy:
        """The live release policy this profile describes."""
        return RiskAwareReleasePolicy(risk_quantile=self.risk_quantile)
