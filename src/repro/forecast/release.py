"""Risk-aware capacity release.

The paper's operator releases its point forecast verbatim, with all
conservatism folded into the scalar under-prediction factor (Fig. 17).
:class:`RiskAwareReleasePolicy` replaces that scalar haircut with an
explicit risk choice: given a signal's banded forecast, release the
headroom at a chosen *overcommit quantile* ``q`` — the probability that
the released capacity exceeds the headroom that actually materialises.
``q = 0.05`` releases the conservative edge of the band, ``q = 0.5``
the median, ``q = 0.95`` the optimistic edge; released capacity is
monotone non-decreasing in ``q`` (a property test pins this).

Whatever the band says, a release is clamped to the usable fraction of
physical capacity (``1 - safety_margin_fraction``) at each level — no
signal can talk the operator into selling capacity the breakers cannot
carry.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.prediction.spot import SpotCapacityForecast

__all__ = ["RiskAwareReleasePolicy"]


@dataclasses.dataclass
class RiskAwareReleasePolicy:
    """Chooses how much of a banded forecast to release to the market.

    Args:
        risk_quantile: Overcommit probability to release at, in (0, 1],
            or ``None`` (default) to release the signal's point forecast
            unchanged — the paper's behaviour, kept allocation-free on
            the default path so same-seed traces stay byte-identical.
    """

    risk_quantile: "float | None" = None

    def __post_init__(self) -> None:
        if self.risk_quantile is not None and not 0 < self.risk_quantile <= 1:
            raise ConfigurationError(
                f"risk_quantile must be in (0, 1], got {self.risk_quantile}"
            )

    def release(self, banded, topology) -> SpotCapacityForecast:
        """The forecast actually handed to the market for one slot."""
        if self.risk_quantile is None:
            return banded.point
        forecast = banded.at_quantile(self.risk_quantile)
        usable = banded.usable_fraction
        pdu_spot = {
            pdu_id: min(
                forecast.pdu_spot_w.get(pdu_id, 0.0), pdu.capacity_w * usable
            )
            for pdu_id, pdu in topology.pdus.items()
        }
        return SpotCapacityForecast(
            pdu_spot_w=pdu_spot,
            ups_spot_w=min(forecast.ups_spot_w, topology.ups.capacity_w * usable),
        )
