"""The bundled telemetry runtime one engine run threads through itself.

:class:`Telemetry` pairs a registry with a tracer under one enabled
flag, and owns the end-of-run export step: given the engine's summary
payload it writes the JSONL trace, the Prometheus dump, and the summary
JSON into the configured directory, recording every path in the
config's manifest (which the CLI prints — a run should never exit
silent about where its artifacts went).
"""

from __future__ import annotations

import pathlib

from repro.errors import ConfigurationError
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.exporters import (
    write_prometheus,
    write_summary_json,
    write_trace_jsonl,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.tracing import NULL_TRACER, PHASES, RunTrace, Tracer

__all__ = ["Telemetry", "DISABLED"]


class Telemetry:
    """One run's registry + tracer, built from a config.

    Args:
        config: ``None`` or ``enabled=False`` selects the shared no-op
            registry and tracer.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig.disabled()
        if self.config.enabled:
            self.registry = MetricsRegistry()
            self.tracer = Tracer()
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER

    @property
    def enabled(self) -> bool:
        """Whether this runtime records anything."""
        return self.config.enabled

    @staticmethod
    def resolve(candidate) -> "Telemetry":
        """Coerce an engine argument into a runtime.

        Accepts an existing :class:`Telemetry`, a
        :class:`TelemetryConfig`, or ``None`` (disabled).
        """
        if isinstance(candidate, Telemetry):
            return candidate
        if isinstance(candidate, TelemetryConfig):
            return Telemetry(candidate)
        if candidate is None:
            return DISABLED
        raise ConfigurationError(
            f"telemetry must be Telemetry, TelemetryConfig or None, "
            f"got {type(candidate).__name__}"
        )

    def finish(self, fallback_label: str, summary_data: dict) -> RunTrace:
        """Close the trace and export artifacts (if configured).

        Args:
            fallback_label: Stem for artifact names when the config does
                not pin one (the engine passes the allocator name).
            summary_data: The run's summary payload (deterministic
                values only — wall time belongs in the metrics dump).

        Returns:
            The finished :class:`RunTrace` (empty when disabled).
        """
        trace = self.tracer.finish()
        cfg = self.config
        if cfg.enabled:
            self._record_phase_timers(trace)
        if not cfg.enabled or cfg.out_dir is None:
            return trace
        out_dir = pathlib.Path(cfg.out_dir)
        label = cfg.next_label(fallback_label)
        written = []
        if cfg.export_trace:
            written.append(
                write_trace_jsonl(
                    out_dir / f"{label}_trace.jsonl",
                    trace,
                    include_timings=cfg.include_timings,
                )
            )
        if cfg.export_metrics:
            written.append(
                write_prometheus(out_dir / f"{label}_metrics.prom", self.registry)
            )
        if cfg.export_summary:
            written.append(
                write_summary_json(
                    out_dir / f"{label}_summary.json",
                    bench=label,
                    data=summary_data,
                )
            )
        cfg.manifest.extend(written)
        return trace

    def _record_phase_timers(self, trace: RunTrace) -> None:
        """Fold span wall times into ``phase_seconds`` timers.

        Timings are collected here, once per run, instead of in the slot
        loop: the engine's spans already carry ``duration_s``, so the
        metrics dump gets full wall-time distributions without a single
        extra clock read on the hot path.
        """
        timers = {
            name: self.registry.timer(
                "phase_seconds", {"phase": name}, buckets=DEFAULT_SECONDS_BUCKETS
            )
            for name in ("slot", *PHASES)
        }
        for span in trace.spans:
            timer = timers.get(span.name)
            if timer is not None:
                timer.observe(span.duration_s)


#: Shared disabled runtime (no-op registry and tracer).
DISABLED = Telemetry(None)
