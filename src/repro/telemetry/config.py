"""Telemetry configuration and the process-wide default.

A :class:`TelemetryConfig` travels with a
:class:`~repro.sim.scenario.Scenario` (or is passed straight to the
engine) and says what to record and where artifacts land.  The
process-wide default (:func:`set_default_config`) exists for the CLI's
``--telemetry`` flag: experiment runners build engines many layers down,
and the default lets one flag instrument all of them without threading a
parameter through every harness.
"""

from __future__ import annotations

import dataclasses
import pathlib

__all__ = ["TelemetryConfig", "default_config", "set_default_config"]


@dataclasses.dataclass
class TelemetryConfig:
    """What one run records and where its artifacts go.

    Attributes:
        enabled: Master switch; ``False`` selects the no-op registry and
            tracer (near-zero cost; see the overhead guard in
            ``benchmarks/bench_engine.py``).
        out_dir: Directory for exported artifacts.  ``None`` keeps
            telemetry in memory only (the trace still rides on the
            :class:`~repro.sim.results.SimulationResult`).
        label: Artifact filename stem.  Empty derives
            ``<allocator>-<nnn>`` per run, ``nnn`` counting runs that
            exported under this config (so one CLI invocation that runs
            several simulations does not overwrite its own files).
        export_trace: Write ``<label>_trace.jsonl``.
        export_metrics: Write ``<label>_metrics.prom``.
        export_summary: Write ``<label>_summary.json``.
        include_timings: Include wall-clock span durations in the JSONL
            trace.  Off by default: the deterministic trace is the
            comparable artifact; timings live in the Prometheus dump.
    """

    enabled: bool = True
    out_dir: str | pathlib.Path | None = None
    label: str = ""
    export_trace: bool = True
    export_metrics: bool = True
    export_summary: bool = True
    include_timings: bool = False

    #: Runs exported under this config (drives the derived label).
    run_count: int = dataclasses.field(default=0, compare=False)
    #: Every artifact path written under this config, in write order.
    manifest: list = dataclasses.field(default_factory=list, compare=False)

    @staticmethod
    def disabled() -> "TelemetryConfig":
        """The explicit off switch."""
        return TelemetryConfig(enabled=False)

    def next_label(self, fallback: str) -> str:
        """Reserve the filename stem for one run's artifacts."""
        self.run_count += 1
        if self.label:
            return (
                self.label
                if self.run_count == 1
                else f"{self.label}-{self.run_count:03d}"
            )
        return f"{fallback}-{self.run_count:03d}"


#: Process-wide default, used when neither the engine call nor the
#: scenario carries a config.  ``None`` means telemetry off.
_DEFAULT: TelemetryConfig | None = None


def default_config() -> TelemetryConfig | None:
    """The process-wide default config (``None`` = disabled)."""
    return _DEFAULT


def set_default_config(config: TelemetryConfig | None) -> TelemetryConfig | None:
    """Install a process-wide default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous
