"""``repro.telemetry``: observability for every simulation run.

Three layers, each usable on its own:

* a **metrics registry** (:mod:`repro.telemetry.registry`) — counters,
  gauges, fixed-bucket histograms, and monotonic timers, with a shared
  no-op implementation that costs a single attribute lookup per call
  when telemetry is disabled;
* a **span tracer** (:mod:`repro.telemetry.tracing`) — the per-slot
  pipeline ``predict -> bid_collect -> clear -> grant -> enforce ->
  settle`` as one nested trace per slot, plus point-in-time events
  (faults injected, grants revoked, invoices settled);
* **exporters** (:mod:`repro.telemetry.exporters`) — a deterministic
  JSONL trace log (timestamps are slot indices, never wall clock),
  Prometheus text exposition for the registry, and a schema-validated
  summary-JSON writer that benchmarks use to accumulate ``BENCH_*.json``
  trajectories under ``benchmarks/results/``.

:class:`TelemetryConfig` (attached to a
:class:`~repro.sim.scenario.Scenario` or passed to the engine) selects
what is recorded and where artifacts land; :class:`Telemetry` is the
bundled runtime the engine threads through the slot loop.  See
``docs/observability.md`` for the event taxonomy and file formats.
"""

from repro.telemetry.config import TelemetryConfig, default_config, set_default_config
from repro.telemetry.exporters import (
    SUMMARY_SCHEMA_VERSION,
    prometheus_text,
    read_trace_jsonl,
    trace_to_jsonl,
    validate_summary,
    validate_summary_file,
    write_prometheus,
    write_summary_json,
    write_trace_jsonl,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from repro.telemetry.runtime import DISABLED, Telemetry
from repro.telemetry.tracing import (
    NULL_TRACER,
    PHASES,
    NullTracer,
    RunTrace,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "PHASES",
    "RunTrace",
    "SUMMARY_SCHEMA_VERSION",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "Timer",
    "Tracer",
    "default_config",
    "prometheus_text",
    "read_trace_jsonl",
    "set_default_config",
    "trace_to_jsonl",
    "validate_summary",
    "validate_summary_file",
    "write_prometheus",
    "write_summary_json",
    "write_trace_jsonl",
]
