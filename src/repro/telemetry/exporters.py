"""Machine-readable exporters: JSONL traces, Prometheus text, summary JSON.

Three formats, one rule — everything a run emits must be diffable and
schema-stable:

* **JSONL trace** — one record per line, ``seq``-ordered.  The default
  export is deterministic (timestamps are slot indices; wall-clock
  durations are withheld unless ``include_timings=True``), so two runs
  of the same ``(scenario, seed)`` write byte-identical files.
* **Prometheus text exposition** — the registry's counters, gauges,
  histograms, and timers in the standard ``# TYPE`` / sample-line
  format, for scraping or offline diffing.
* **Summary JSON** — the ``BENCH_*.json`` trajectory format: a small,
  validated envelope (``bench``, ``schema_version``, ``data``) written
  next to the free-text archives under ``benchmarks/results/`` so
  successive PRs can compare like with like.  :func:`validate_summary`
  is the schema check CI runs on every emitted file; this module is
  also runnable (``python -m repro.telemetry.exporters FILE...``) as
  that check.
"""

from __future__ import annotations

import json
import math
import pathlib
from collections.abc import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.telemetry.registry import MetricsRegistry, Timer
from repro.telemetry.tracing import RunTrace, Span

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "prometheus_text",
    "write_prometheus",
    "write_summary_json",
    "validate_summary",
    "validate_summary_file",
]

#: Version stamp written into (and required from) every summary JSON.
SUMMARY_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# JSONL trace
# ----------------------------------------------------------------------

def _jsonable(value, strict: bool = False):
    """Coerce attribute values to a stable JSON form.

    Non-finite floats are stringified (trace attrs must serialise no
    matter what the simulation produced) unless ``strict`` — the summary
    writer's mode, where a NaN/inf is a bug worth failing on.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            if strict:
                raise ConfigurationError(
                    f"summary payload contains non-finite number {value!r}"
                )
            return repr(value)
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v, strict) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [_jsonable(v, strict) for v in items]
    return str(value)


def trace_to_jsonl(trace: RunTrace, include_timings: bool = False) -> list[str]:
    """Render a trace as JSONL lines (no trailing newlines).

    Args:
        trace: A finished :class:`~repro.telemetry.tracing.RunTrace`.
        include_timings: Also emit each span's wall-clock ``duration_s``
            — useful for humans, fatal for byte-for-byte run comparison,
            hence off by default.
    """
    lines = []
    for record in trace.records:
        if isinstance(record, Span):
            row = {
                "kind": "span",
                "seq": record.seq,
                "slot": record.slot,
                "name": record.name,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "attrs": _jsonable(record.attrs),
            }
            if include_timings:
                row["duration_s"] = record.duration_s
        else:
            row = {
                "kind": "event",
                "seq": record.seq,
                "slot": record.slot,
                "name": record.name,
                "parent_id": record.parent_id,
                "attrs": _jsonable(record.attrs),
            }
        lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
    return lines


def write_trace_jsonl(
    path, trace: RunTrace, include_timings: bool = False
) -> pathlib.Path:
    """Write a trace to a ``.jsonl`` file; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = trace_to_jsonl(trace, include_timings=include_timings)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def read_trace_jsonl(path) -> list[dict]:
    """Load a JSONL trace file back into dict records."""
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _format_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Instruments sharing a name (distinct label sets) are grouped under
    one ``# TYPE`` header; timers expose their underlying seconds
    histograms.
    """
    ns = registry.namespace
    lines: list[str] = []
    seen_headers: set[str] = set()
    for inst in registry.instruments():
        if isinstance(inst, Timer):
            kind, hist = "histogram", inst.histogram
        else:
            kind, hist = inst.kind, inst
        full = f"{ns}_{inst.name}"
        if full not in seen_headers:
            lines.append(f"# TYPE {full} {kind}")
            seen_headers.add(full)
        if kind == "histogram":
            for le, count in hist.cumulative_counts():
                labels = _format_labels(inst.labels, (("le", _format_value(le)),))
                lines.append(f"{full}_bucket{labels} {count}")
            base = _format_labels(inst.labels)
            lines.append(f"{full}_sum{base} {_format_value(hist.sum)}")
            lines.append(f"{full}_count{base} {hist.count}")
        else:
            labels = _format_labels(inst.labels)
            lines.append(f"{full}{labels} {_format_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path, registry: MetricsRegistry) -> pathlib.Path:
    """Write the registry's exposition to a ``.prom`` file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(registry))
    return path


# ----------------------------------------------------------------------
# Summary JSON (the BENCH_*.json trajectory format)
# ----------------------------------------------------------------------

def write_summary_json(path, bench: str, data: Mapping, meta: Mapping | None = None):
    """Write one summary envelope; validates before writing.

    Args:
        path: Destination ``.json`` file.
        bench: Short benchmark/run name (``"fig18_scale"``, ``"engine"``).
        data: The payload — JSON-compatible, finite numbers only.
        meta: Optional provenance (seed, slots, machine class...).

    Returns:
        The path written.
    """
    envelope = {
        "bench": bench,
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "data": _jsonable(data, strict=True),
    }
    if meta:
        envelope["meta"] = _jsonable(meta, strict=True)
    validate_summary(envelope)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path


def _check_finite(node, where: str) -> None:
    if isinstance(node, bool) or node is None or isinstance(node, (int, str)):
        return
    if isinstance(node, float):
        if not math.isfinite(node):
            raise ConfigurationError(f"summary {where}: non-finite number")
        return
    if isinstance(node, dict):
        for key, value in node.items():
            if not isinstance(key, str):
                raise ConfigurationError(f"summary {where}: non-string key {key!r}")
            _check_finite(value, f"{where}.{key}")
        return
    if isinstance(node, list):
        for i, value in enumerate(node):
            _check_finite(value, f"{where}[{i}]")
        return
    raise ConfigurationError(
        f"summary {where}: unsupported type {type(node).__name__}"
    )


def validate_summary(obj) -> None:
    """Check one summary envelope against the exporter schema.

    The schema is deliberately small: a dict with a non-empty string
    ``bench``, an integer ``schema_version`` matching
    :data:`SUMMARY_SCHEMA_VERSION`, a dict ``data`` of JSON-compatible
    values with finite numbers, and (optionally) a dict ``meta`` held to
    the same standard.  Raises :class:`ConfigurationError` on the first
    violation.
    """
    if not isinstance(obj, dict):
        raise ConfigurationError("summary must be a JSON object")
    unknown = set(obj) - {"bench", "schema_version", "data", "meta"}
    if unknown:
        raise ConfigurationError(f"summary has unknown keys {sorted(unknown)}")
    bench = obj.get("bench")
    if not isinstance(bench, str) or not bench:
        raise ConfigurationError("summary needs a non-empty string 'bench'")
    version = obj.get("schema_version")
    if version != SUMMARY_SCHEMA_VERSION:
        raise ConfigurationError(
            f"summary schema_version must be {SUMMARY_SCHEMA_VERSION}, "
            f"got {version!r}"
        )
    data = obj.get("data")
    if not isinstance(data, dict):
        raise ConfigurationError("summary needs an object 'data'")
    _check_finite(data, "data")
    if "meta" in obj:
        if not isinstance(obj["meta"], dict):
            raise ConfigurationError("summary 'meta' must be an object")
        _check_finite(obj["meta"], "meta")


def validate_summary_file(path) -> None:
    """Load and validate one summary JSON file."""
    path = pathlib.Path(path)
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON ({exc})") from exc
    try:
        validate_summary(obj)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from exc


def main(argv: Iterable[str] | None = None) -> int:
    """Validate summary files from the command line (used by CI)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate summary JSON files against the exporter schema."
    )
    parser.add_argument("files", nargs="+", help="summary .json files")
    args = parser.parse_args(None if argv is None else list(argv))
    failures = 0
    for name in args.files:
        try:
            validate_summary_file(name)
        except ConfigurationError as exc:
            print(f"FAIL {exc}")
            failures += 1
        else:
            print(f"ok   {name}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
