"""The metrics registry: counters, gauges, histograms, timers.

Instruments follow Prometheus semantics (monotone counters, set-anywhere
gauges, cumulative-bucket histograms) so the text exposition in
:mod:`repro.telemetry.exporters` is a direct mapping.  Label sets are
frozen at instrument-creation time — ``registry.counter("faults_total",
labels={"kind": "grant_lost"})`` returns one instrument per distinct
label set, memoised, so hot loops can hold the instrument and never pay
the lookup again.

Disabled telemetry uses :class:`NullRegistry` / the ``NULL_*``
singletons: every method is a constant no-op (no allocation, no dict
lookup), which keeps the disabled path within noise of unmetered code.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_WATTS_BUCKETS",
    "DEFAULT_PRICE_BUCKETS",
]

#: Fixed bucket layouts (upper bounds, seconds / watts / $-per-kWh).
#: Fixed layouts keep histograms from different runs directly
#: comparable and the exposition format stable across PRs.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
DEFAULT_WATTS_BUCKETS = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 50_000.0, 250_000.0,
)
DEFAULT_PRICE_BUCKETS = (
    0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.40, 0.60, 1.0,
)


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity: a name plus a frozen label set."""

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative count."""
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self, name: str, labels=()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        self._value += delta

    @property
    def value(self) -> float:
        """Last recorded value."""
        return self._value


class Histogram(_Instrument):
    """Fixed-bucket distribution with cumulative-bucket exposition.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail, and ``sum``/``count`` support mean computation downstream.
    """

    __slots__ = ("buckets", "_counts", "_inf", "_sum", "_count")
    kind = "histogram"

    def __init__(self, name: str, labels=(), buckets=DEFAULT_SECONDS_BUCKETS) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} needs strictly increasing buckets"
            )
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._inf = 0
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                return
        self._inf += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` rows, +Inf last."""
        rows: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self._counts):
            running += n
            rows.append((bound, running))
        rows.append((float("inf"), running + self._inf))
        return rows


class Timer(_Instrument):
    """A monotonic stopwatch feeding a seconds histogram.

    Use as a context manager (``with timer: ...``) or via explicit
    :meth:`observe` when the caller already measured the interval.
    """

    __slots__ = ("histogram", "_started")
    kind = "timer"

    def __init__(self, name: str, labels=(), buckets=DEFAULT_SECONDS_BUCKETS) -> None:
        super().__init__(name, labels)
        self.histogram = Histogram(name, labels, buckets)
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.histogram.observe(time.perf_counter() - self._started)

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)

    @property
    def count(self) -> int:
        """Number of recorded intervals."""
        return self.histogram.count

    @property
    def total_seconds(self) -> float:
        """Total recorded time."""
        return self.histogram.sum


class MetricsRegistry:
    """Creates and memoises instruments; the exporters' single source.

    The registry is insertion-ordered, so Prometheus dumps are stable
    for a given program order — a prerequisite for diffable artifacts.
    """

    enabled = True

    def __init__(self, namespace: str = "spotdc") -> None:
        self.namespace = namespace
        self._instruments: dict[tuple, _Instrument] = {}

    def _get(self, cls, name: str, labels, **kwargs):
        key = (cls.kind, name, _label_key(labels))
        found = self._instruments.get(key)
        if found is None:
            found = cls(name, key[2], **kwargs)
            self._instruments[key] = found
        return found

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        """Get-or-create a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        """Get-or-create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get-or-create a fixed-bucket histogram."""
        return self._get(Histogram, name, labels, buckets=tuple(buckets))

    def timer(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Timer:
        """Get-or-create a monotonic timer."""
        return self._get(Timer, name, labels, buckets=tuple(buckets))

    def instruments(self) -> list[_Instrument]:
        """All instruments in creation order."""
        return list(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """One object that absorbs every instrument call."""

    __slots__ = ()
    name = ""
    labels = ()
    kind = "null"
    buckets = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    total_seconds = 0.0
    histogram: "_NullInstrument"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self):
        return []

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NullInstrument.histogram = _NULL_INSTRUMENT


class NullRegistry(MetricsRegistry):
    """The disabled registry: every factory returns the same no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(namespace="spotdc")

    def counter(self, name, labels=None):
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None):
        return _NULL_INSTRUMENT

    def histogram(self, name, labels=None, buckets=DEFAULT_SECONDS_BUCKETS):
        return _NULL_INSTRUMENT

    def timer(self, name, labels=None, buckets=DEFAULT_SECONDS_BUCKETS):
        return _NULL_INSTRUMENT

    def instruments(self):
        return []


#: Shared no-op registry: safe to hand to any number of engines.
NULL_REGISTRY = NullRegistry()
