"""Span tracing of the per-slot pipeline, plus point-in-time events.

One simulated slot is one trace: a root ``slot`` span with the pipeline
phases — ``predict``, ``bid_collect``, ``clear``, ``grant``,
``enforce``, ``settle`` — as children, each carrying the attributes the
phase decided (racks bid, prices scanned, price chosen, grants revoked,
faults injected).  Events are zero-duration records interleaved with
spans in one deterministic sequence.

Determinism is a design constraint, not an afterthought: span identity
and ordering come from a monotone sequence number and the slot index,
never from wall clock, so two runs of the same ``(scenario, seed)``
produce byte-identical JSONL traces (see
``tests/test_telemetry_determinism.py``).  Wall-clock durations *are*
measured (they feed the registry's timers and the optional
``include_timings`` export mode) but are excluded from the default
export.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections.abc import Iterator, Mapping

from repro.errors import SimulationError

__all__ = ["PHASES", "Span", "RunTrace", "Tracer", "NullTracer", "NULL_TRACER"]

#: The per-slot pipeline phases, in execution order.  The engine
#: guarantees one child span per phase per slot (trivial phases — e.g.
#: clearing in slot 0, which has no prior-slot bids — still appear, with
#: their attributes reflecting the no-op).
PHASES = ("predict", "bid_collect", "clear", "grant", "enforce", "settle")


@dataclasses.dataclass
class Span:
    """One traced operation.

    Attributes:
        name: Span name (``slot``, a phase, or a library-defined name).
        slot: Slot index the span belongs to (-1 for run-scoped spans).
        span_id: Monotone id, assigned at open in open order.
        parent_id: Enclosing span's id, or -1 for a root.
        attrs: Attributes set during the span (insertion-ordered).
        duration_s: Wall-clock duration (excluded from deterministic
            exports; populated at close).
        seq: Position in the unified span/event record sequence,
            assigned at *close* (events interleave in the same order a
            reader of the JSONL file sees).
    """

    name: str
    slot: int
    span_id: int
    parent_id: int
    attrs: dict = dataclasses.field(default_factory=dict)
    duration_s: float = 0.0
    seq: int = -1

    def set(self, **attrs) -> "Span":
        """Attach attributes; later writes win."""
        self.attrs.update(attrs)
        return self


@dataclasses.dataclass(frozen=True)
class Event:
    """A point-in-time record (fault injected, grant revoked, ...)."""

    name: str
    slot: int
    parent_id: int
    attrs: Mapping
    seq: int


class RunTrace:
    """A finished run's spans and events, in record order.

    Records are ordered by ``seq``: events appear where they happened,
    spans appear where they *closed* (so a slot's phases precede the
    slot span itself, and a reader can fold the file in one pass).
    """

    def __init__(self, records: list) -> None:
        self.records = list(records)

    @property
    def spans(self) -> list[Span]:
        """All spans, in close order."""
        return [r for r in self.records if isinstance(r, Span)]

    @property
    def events(self) -> list[Event]:
        """All events, in emission order."""
        return [r for r in self.records if isinstance(r, Event)]

    def spans_named(self, name: str) -> list[Span]:
        """Spans with one name, in close order."""
        return [s for s in self.spans if s.name == name]

    def slot_span(self, slot: int) -> Span:
        """The root span of one slot."""
        for span in self.spans:
            if span.name == "slot" and span.slot == slot:
                return span
        raise SimulationError(f"no slot span for slot {slot}")

    def phase_spans(self, slot: int) -> dict[str, Span]:
        """Phase-name -> span for one slot."""
        root = self.slot_span(slot)
        return {
            s.name: s
            for s in self.spans
            if s.parent_id == root.span_id and s.name in PHASES
        }

    def slots(self) -> list[int]:
        """Slot indices with a root span, ascending."""
        return sorted(s.slot for s in self.spans if s.name == "slot")


class Tracer:
    """Collects spans and events for one run."""

    enabled = True

    def __init__(self) -> None:
        self._records: list = []
        self._stack: list[Span] = []
        self._next_span_id = 0
        self._next_seq = 0

    @contextlib.contextmanager
    def span(self, name: str, slot: int = -1, **attrs) -> Iterator[Span]:
        """Open a child span of the current span (or a new root)."""
        parent = self._stack[-1].span_id if self._stack else -1
        span = Span(
            name=name,
            slot=slot,
            span_id=self._next_span_id,
            parent_id=parent,
            attrs=dict(attrs),
        )
        self._next_span_id += 1
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - started
            popped = self._stack.pop()
            if popped is not span:  # pragma: no cover - structural bug
                raise SimulationError("span stack corrupted")
            span.seq = self._next_seq
            self._next_seq += 1
            self._records.append(span)

    def event(self, name: str, slot: int = -1, **attrs) -> None:
        """Record a point-in-time event under the current span."""
        parent = self._stack[-1].span_id if self._stack else -1
        self._records.append(
            Event(
                name=name,
                slot=slot,
                parent_id=parent,
                attrs=dict(attrs),
                seq=self._next_seq,
            )
        )
        self._next_seq += 1

    @property
    def open_spans(self) -> int:
        """Depth of the current span stack."""
        return len(self._stack)

    def finish(self) -> RunTrace:
        """Freeze the trace (open spans are a caller bug)."""
        if self._stack:
            raise SimulationError(
                f"finish() with {len(self._stack)} span(s) still open"
            )
        return RunTrace(self._records)


class _NullSpan:
    """Absorbs attribute writes on the disabled path."""

    __slots__ = ()
    name = ""
    slot = -1
    span_id = -1
    parent_id = -1
    attrs: dict = {}
    duration_s = 0.0
    seq = -1

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable context manager: no generator, no allocation per use."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: spans cost one method call, events nothing."""

    enabled = False

    def span(self, name: str, slot: int = -1, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, slot: int = -1, **attrs) -> None:
        pass

    @property
    def open_spans(self) -> int:
        return 0

    def finish(self) -> RunTrace:
        return RunTrace([])


#: Shared no-op tracer: safe to hand to any number of engines.
NULL_TRACER = NullTracer()
