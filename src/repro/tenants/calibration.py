"""Cost-model calibration: pinning tenants' willingness-to-pay.

The paper chooses cost parameters "such that spot capacity will not cost
more than directly subscribing guaranteed capacity", with Search tenants
bidding the highest prices, Web medium, and opportunistic tenants the
lowest (Section IV-C).  These helpers scale the cost coefficients so
that the *marginal* value of spot capacity at a reference operating
point equals a target price — which anchors each tenant class's bids at
the intended point of the price spectrum.
"""

from __future__ import annotations

from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.economics.valuation import (
    opportunistic_value_curve,
    sprinting_value_curve,
)
from repro.errors import ConfigurationError
from repro.power.latency import LatencyModel
from repro.power.throughput import ThroughputModel

__all__ = [
    "calibrate_sprinting_cost",
    "calibrate_opportunistic_cost",
]

#: Ratio of the quadratic SLO-penalty coefficient to the linear
#: coefficient, per ms.  High enough that SLO violations dominate the
#: sprinting value of spot capacity, as the paper's model intends.
_DEFAULT_B_TO_A_PER_MS = 0.5


def calibrate_sprinting_cost(
    latency_model: LatencyModel,
    guaranteed_w: float,
    reference_rps: float,
    max_spot_w: float,
    target_marginal_per_kw_hour: float,
    slo_ms: float = 100.0,
    b_to_a_per_ms: float = _DEFAULT_B_TO_A_PER_MS,
) -> SprintingCostModel:
    """Scale a sprinting cost model to a target willingness-to-pay.

    The returned model's value curve (at the reference arrival rate,
    starting from the guaranteed budget) has a marginal value of
    ``target_marginal_per_kw_hour`` at 30% of the rack's spot headroom —
    so the tenant's demand is elastic around that price.

    Args:
        latency_model: The rack's tail-latency model.
        guaranteed_w: The tenant's subscription (base budget).
        reference_rps: A high-load arrival rate at which the tenant
            would bid (e.g. the rate that fills ~15% of slots).
        max_spot_w: Rack spot headroom.
        target_marginal_per_kw_hour: Desired marginal value, $/kW/h.
        slo_ms: Latency SLO.
        b_to_a_per_ms: Shape ratio ``b / a`` of the quadratic penalty to
            the linear term.
    """
    if target_marginal_per_kw_hour <= 0:
        raise ConfigurationError("target marginal price must be positive")
    if max_spot_w <= 0:
        raise ConfigurationError("max_spot_w must be positive")
    unit = SprintingCostModel(a=1.0, b=b_to_a_per_ms, slo_ms=slo_ms)
    curve = sprinting_value_curve(
        latency_model, unit, guaranteed_w, reference_rps, max_spot_w
    )
    reference_point = 0.3 * max_spot_w
    marginal = curve.marginal_gain_per_hour(reference_point)
    if marginal <= 0:
        raise ConfigurationError(
            "spot capacity has no marginal value at the reference point; "
            "check that the guaranteed budget actually constrains the "
            "workload at reference_rps"
        )
    scale = (target_marginal_per_kw_hour / 1000.0) / marginal
    return SprintingCostModel(a=scale, b=b_to_a_per_ms * scale, slo_ms=slo_ms)


def calibrate_opportunistic_cost(
    throughput_model: ThroughputModel,
    guaranteed_w: float,
    max_spot_w: float,
    target_marginal_per_kw_hour: float,
) -> OpportunisticCostModel:
    """Scale an opportunistic cost model to a target willingness-to-pay.

    Same construction as the sprinting calibration, using the batch
    value curve with a unit backlog (the normalised gain is backlog
    independent).
    """
    if target_marginal_per_kw_hour <= 0:
        raise ConfigurationError("target marginal price must be positive")
    if max_spot_w <= 0:
        raise ConfigurationError("max_spot_w must be positive")
    unit = OpportunisticCostModel(rho=1.0)
    curve = opportunistic_value_curve(
        throughput_model, unit, guaranteed_w, 1.0, max_spot_w
    )
    reference_point = 0.3 * max_spot_w
    marginal = curve.marginal_gain_per_hour(reference_point)
    if marginal <= 0:
        raise ConfigurationError(
            "spot capacity has no marginal throughput value; check that "
            "the guaranteed budget is below the rack's peak"
        )
    scale = (target_marginal_per_kw_hour / 1000.0) / marginal
    return OpportunisticCostModel(rho=scale)
