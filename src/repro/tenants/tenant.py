"""Tenant models: sprinting, opportunistic, and non-participating.

Tenants are the demand side of SpotDC (paper Section II-C):

* **Sprinting tenants** run delay-sensitive services with insufficient
  capacity reservation; they buy spot capacity to avoid SLO violations
  during traffic peaks (~15% of slots) and bid the highest prices.
* **Opportunistic tenants** run delay-tolerant batch work; they buy
  spot capacity to drain backlogs faster (~30% of slots) and never bid
  above the amortised guaranteed-capacity rate.
* **Non-participating tenants** never bid; their (fluctuating) power
  draw is what creates — and reclaims — the shared spot capacity.

Value curves are cached: the opportunistic curve is independent of the
backlog (the normalised gain depends only on the power model), and the
sprinting curve is quantised over arrival rate, which keeps year-long
simulations fast without changing bids materially.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping

import numpy as np

from repro.core.bids import RackBid, TenantBid
from repro.economics.cost import OpportunisticCostModel, SprintingCostModel
from repro.economics.valuation import (
    SpotValueCurve,
    opportunistic_value_curve,
    sprinting_value_curve,
)
from repro.errors import ConfigurationError
from repro.tenants.bidding import BiddingStrategy, LinearElasticStrategy
from repro.tenants.portfolio import RackBidContext, TenantRack
from repro.workloads.base import BatchWorkload, InteractiveWorkload, SlotPerformance

__all__ = [
    "Tenant",
    "SprintingTenant",
    "OpportunisticTenant",
    "NonParticipatingTenant",
]


class Tenant(abc.ABC):
    """Base tenant: a named owner of one or more racks."""

    #: Tenant class label: ``"sprinting"``, ``"opportunistic"``, or
    #: ``"non-participating"`` (paper Table I's Type column).
    kind: str = "tenant"

    def __init__(self, tenant_id: str, racks: list[TenantRack]) -> None:
        if not tenant_id:
            raise ConfigurationError("tenant_id must be non-empty")
        if not racks:
            raise ConfigurationError(f"tenant {tenant_id}: needs at least one rack")
        rack_ids = [r.rack_id for r in racks]
        if len(set(rack_ids)) != len(rack_ids):
            raise ConfigurationError(
                f"tenant {tenant_id}: duplicate rack ids {rack_ids}"
            )
        self.tenant_id = tenant_id
        self.racks = racks

    @property
    def participates(self) -> bool:
        """Whether this tenant ever bids in the spot market."""
        return True

    @property
    def total_guaranteed_w(self) -> float:
        """Total subscription across the tenant's racks."""
        return sum(r.guaranteed_w for r in self.racks)

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        """Materialise all rack workload traces for a run."""
        for rack in self.racks:
            rack.workload.prepare(slots, rng)

    @abc.abstractmethod
    def needed_spot_w(self, slot: int) -> dict[str, float]:
        """Extra watts wanted per rack this slot (racks needing none omitted)."""

    @abc.abstractmethod
    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        """Value curves for the racks that want spot capacity this slot."""

    @abc.abstractmethod
    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        """Build this slot's bundled bid; ``None`` when nothing is needed."""

    def execute_slot(
        self, slot: int, budgets_w: Mapping[str, float], slot_seconds: float
    ) -> dict[str, SlotPerformance]:
        """Run every rack for one slot under the enforced budgets.

        Args:
            slot: Slot index (must advance by one per call).
            budgets_w: Enforced budget per rack id; racks missing from
                the mapping run at their guaranteed capacity.
            slot_seconds: Slot duration.
        """
        outcomes: dict[str, SlotPerformance] = {}
        for rack in self.racks:
            budget = budgets_w.get(rack.rack_id, rack.guaranteed_w)
            outcomes[rack.rack_id] = rack.workload.execute(
                slot, budget, slot_seconds
            )
        return outcomes


class _ParticipatingTenant(Tenant):
    """Shared machinery for tenants that bid in the market."""

    def __init__(
        self,
        tenant_id: str,
        racks: list[TenantRack],
        q_low: float,
        q_high: float,
        strategy: BiddingStrategy | None = None,
    ) -> None:
        super().__init__(tenant_id, racks)
        if not 0 <= q_low <= q_high:
            raise ConfigurationError(
                f"tenant {tenant_id}: need 0 <= q_low <= q_high, got "
                f"({q_low}, {q_high})"
            )
        self.q_low = q_low
        self.q_high = q_high
        self.strategy = strategy or LinearElasticStrategy()

    def _contexts(
        self, slot: int, predicted_price: float | None
    ) -> list[RackBidContext]:
        needed = self.needed_spot_w(slot)
        curves = self.value_curves(slot)
        contexts = []
        for rack in self.racks:
            if rack.rack_id not in needed:
                continue
            contexts.append(
                RackBidContext(
                    rack=rack,
                    needed_w=needed[rack.rack_id],
                    value_curve=curves[rack.rack_id],
                    q_low=self.q_low,
                    q_high=self.q_high,
                    predicted_price=predicted_price,
                )
            )
        return contexts

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        rack_bids = []
        for ctx in self._contexts(slot, predicted_price):
            demand = self.strategy.make_rack_bid(ctx)
            if demand is None:
                continue
            rack_bids.append(
                RackBid(
                    rack_id=ctx.rack.rack_id,
                    pdu_id=ctx.rack.pdu_id,
                    tenant_id=self.tenant_id,
                    demand=demand,
                    rack_cap_w=ctx.rack.max_spot_w,
                )
            )
        if not rack_bids:
            return None
        return TenantBid(tenant_id=self.tenant_id, rack_bids=tuple(rack_bids))


class SprintingTenant(_ParticipatingTenant):
    """A delay-sensitive tenant sprinting to protect its latency SLO.

    Args:
        tenant_id: Name (e.g. ``"Search-1"``).
        racks: Portfolio; every workload must be interactive.
        cost_models: Latency cost model per rack id (typically from
            :func:`repro.tenants.calibration.calibrate_sprinting_cost`).
        q_low: Low price anchor, $/kW/h.
        q_high: Maximum acceptable price; sprinting tenants may exceed
            the amortised guaranteed rate to avoid SLO penalties.
        strategy: Bidding strategy (default: the SpotDC linear fit).
        rate_quantum_rps: Arrival-rate quantisation step for the value-
            curve cache; smaller is more exact, larger is faster.
    """

    kind = "sprinting"

    def __init__(
        self,
        tenant_id: str,
        racks: list[TenantRack],
        cost_models: Mapping[str, SprintingCostModel],
        q_low: float,
        q_high: float,
        strategy: BiddingStrategy | None = None,
        rate_quantum_rps: float | None = None,
    ) -> None:
        super().__init__(tenant_id, racks, q_low, q_high, strategy)
        for rack in racks:
            if not isinstance(rack.workload, InteractiveWorkload):
                raise ConfigurationError(
                    f"tenant {tenant_id}: rack {rack.rack_id} workload is not "
                    "interactive"
                )
            if rack.rack_id not in cost_models:
                raise ConfigurationError(
                    f"tenant {tenant_id}: no cost model for rack {rack.rack_id}"
                )
        self.cost_models = dict(cost_models)
        self._rate_quantum = rate_quantum_rps
        self._curve_cache: dict[tuple[str, int], SpotValueCurve] = {}

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        needed: dict[str, float] = {}
        for rack in self.racks:
            extra = rack.workload.desired_power_w(slot) - rack.guaranteed_w
            if extra > 0 and rack.useful_spot_w > 0:
                needed[rack.rack_id] = min(extra, rack.max_spot_w)
        return needed

    def _quantum_for(self, rack: TenantRack) -> float:
        if self._rate_quantum is not None:
            return self._rate_quantum
        workload = rack.workload
        assert isinstance(workload, InteractiveWorkload)
        return max(workload.latency_model.mu_max_rps * 0.02, 1e-6)

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        curves: dict[str, SpotValueCurve] = {}
        for rack in self.racks:
            if rack.useful_spot_w <= 0:
                continue
            workload = rack.workload
            assert isinstance(workload, InteractiveWorkload)
            quantum = self._quantum_for(rack)
            rate_bin = int(round(workload.intensity(slot) / quantum))
            key = (rack.rack_id, rate_bin)
            if key not in self._curve_cache:
                self._curve_cache[key] = sprinting_value_curve(
                    workload.latency_model,
                    self.cost_models[rack.rack_id],
                    base_power_w=rack.guaranteed_w,
                    arrival_rps=rate_bin * quantum,
                    max_spot_w=rack.useful_spot_w,
                )
            curves[rack.rack_id] = self._curve_cache[key]
        return curves


class OpportunisticTenant(_ParticipatingTenant):
    """A delay-tolerant tenant buying cheap spot capacity for speed-up.

    Args:
        tenant_id: Name (e.g. ``"Count-1"``).
        racks: Portfolio; every workload must be batch.
        cost_models: Completion-time cost model per rack id.
        q_low: Low price anchor, $/kW/h.
        q_high: Maximum acceptable price — the paper caps this at the
            amortised guaranteed-capacity rate (~US$0.2/kW/h).
        strategy: Bidding strategy.
    """

    kind = "opportunistic"

    def __init__(
        self,
        tenant_id: str,
        racks: list[TenantRack],
        cost_models: Mapping[str, OpportunisticCostModel],
        q_low: float,
        q_high: float,
        strategy: BiddingStrategy | None = None,
    ) -> None:
        super().__init__(tenant_id, racks, q_low, q_high, strategy)
        for rack in racks:
            if not isinstance(rack.workload, BatchWorkload):
                raise ConfigurationError(
                    f"tenant {tenant_id}: rack {rack.rack_id} workload is not batch"
                )
            if rack.rack_id not in cost_models:
                raise ConfigurationError(
                    f"tenant {tenant_id}: no cost model for rack {rack.rack_id}"
                )
        self.cost_models = dict(cost_models)
        self._curve_cache: dict[str, SpotValueCurve] = {}

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        needed: dict[str, float] = {}
        for rack in self.racks:
            workload = rack.workload
            assert isinstance(workload, BatchWorkload)
            if workload.wants_sprint(slot) and rack.useful_spot_w > 0:
                needed[rack.rack_id] = rack.useful_spot_w
        return needed

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        curves: dict[str, SpotValueCurve] = {}
        for rack in self.racks:
            if rack.useful_spot_w <= 0:
                continue
            if rack.rack_id not in self._curve_cache:
                workload = rack.workload
                assert isinstance(workload, BatchWorkload)
                self._curve_cache[rack.rack_id] = opportunistic_value_curve(
                    workload.throughput_model,
                    self.cost_models[rack.rack_id],
                    base_power_w=rack.guaranteed_w,
                    backlog_units=1.0,
                    max_spot_w=rack.useful_spot_w,
                )
            curves[rack.rack_id] = self._curve_cache[rack.rack_id]
        return curves


class NonParticipatingTenant(Tenant):
    """A tenant that never bids; its draw shapes the spot capacity.

    The "Other" rows of the paper's Table I: groups of tenants whose
    aggregate power follows a measured (here: generated) trace.
    """

    kind = "non-participating"

    @property
    def participates(self) -> bool:
        return False

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        return {}

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        return {}

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        return None
