"""Misbehaving tenant wrappers for enforcement and admission testing.

Real tenants own their servers, so nothing physically stops one from
drawing above its enforced budget — that is precisely why the paper's
exception handling includes warnings and involuntary power cuts.
:class:`OverdrawingTenant` wraps any tenant and makes its racks overdraw
with a configurable probability, bounded by the rack's physical
capacity, so enforcement and emergency accounting can be exercised
end to end.

Likewise nothing stops a tenant's bidding agent from submitting
garbage: :class:`MalformedBidTenant` corrupts a configurable fraction
of its inner tenant's bids (NaN parameters, inverted breakpoints,
demand beyond the rack headroom) so the admission front door
(:mod:`repro.recovery.admission`) can be exercised end to end.

Both wrappers reset their mutable counters in :meth:`prepare`, so one
tenant object can be reused across engine runs without leaking state
between them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.core.bids import TenantBid
from repro.core.demand import LinearBid, StepBid
from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError
from repro.tenants.tenant import Tenant
from repro.workloads.base import SlotPerformance

__all__ = ["OverdrawingTenant", "MalformedBidTenant"]


class OverdrawingTenant(Tenant):
    """Delegating wrapper whose racks sometimes exceed their budget.

    Args:
        inner: The well-behaved tenant being wrapped.
        overdraw_probability: Per-rack-per-slot probability of drawing
            above the enforced budget.
        overdraw_fraction: Overdraw magnitude as a fraction of the
            budget (clamped to the rack's physical capacity).
        rng: Random source.
    """

    def __init__(
        self,
        inner: Tenant,
        overdraw_probability: float,
        overdraw_fraction: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0 <= overdraw_probability <= 1:
            raise ConfigurationError("overdraw_probability must be in [0, 1]")
        if overdraw_fraction <= 0:
            raise ConfigurationError("overdraw_fraction must be positive")
        # Intentionally skip Tenant.__init__ validation duplication: the
        # wrapper presents the inner tenant's identity and racks.
        self.inner = inner
        self.tenant_id = inner.tenant_id
        self.racks = inner.racks
        self.overdraw_probability = overdraw_probability
        self.overdraw_fraction = overdraw_fraction
        self._rng = rng
        self.overdraw_slots = 0

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    @property
    def participates(self) -> bool:
        return self.inner.participates

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        # Reset mutable run state: prepare() marks the start of a fresh
        # run, and a reused wrapper must not carry the previous run's
        # overdraw tally into it.
        self.overdraw_slots = 0
        self.inner.prepare(slots, rng)

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        return self.inner.needed_spot_w(slot)

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        return self.inner.value_curves(slot)

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        return self.inner.make_bid(slot, predicted_price)

    def execute_slot(
        self, slot: int, budgets_w: Mapping[str, float], slot_seconds: float
    ) -> dict[str, SlotPerformance]:
        outcomes = self.inner.execute_slot(slot, budgets_w, slot_seconds)
        physical = {
            rack.rack_id: rack.guaranteed_w + rack.max_spot_w
            for rack in self.racks
        }
        adjusted: dict[str, SlotPerformance] = {}
        for rack_id, perf in outcomes.items():
            if self._rng.random() < self.overdraw_probability:
                budget = budgets_w.get(
                    rack_id,
                    next(
                        r.guaranteed_w for r in self.racks if r.rack_id == rack_id
                    ),
                )
                rogue = min(
                    budget * (1 + self.overdraw_fraction), physical[rack_id]
                )
                if rogue > perf.power_w:
                    self.overdraw_slots += 1
                    perf = dataclasses.replace(perf, power_w=rogue)
            adjusted[rack_id] = perf
        return adjusted


class MalformedBidTenant(Tenant):
    """Delegating wrapper that submits corrupted bids.

    With probability ``corrupt_probability`` per solicited slot, the
    wrapper takes the inner tenant's bundle and corrupts its *first*
    rack bid with one of the admission front door's rejection classes —
    corrupting a single bid deliberately leaves the bundle's other bids
    valid, so tests exercise bundle-atomic quarantine (the valid
    siblings must be rejected too, never partially admitted).

    Corruption happens by attribute mutation on a fresh
    :class:`LinearBid` copy — exactly the attack surface the admission
    layer exists for: demand objects are plain mutable Python objects,
    and ``NaN`` passes every constructor comparison.

    Args:
        inner: The well-behaved tenant being wrapped.
        corrupt_probability: Per-solicited-slot probability the bundle
            is corrupted.
        rng: Random source (corruption timing and mode choice).
        corruptions: Restrict to these corruption modes (default: all
            of :data:`repro.recovery.admission.QUARANTINE_REASONS`).
    """

    #: One corruption mode per quarantine reason.
    CORRUPTIONS = (
        "non_finite",
        "inverted_prices",
        "inverted_quantities",
        "negative_value",
        "exceeds_rack_cap",
    )

    def __init__(
        self,
        inner: Tenant,
        corrupt_probability: float,
        rng: np.random.Generator,
        corruptions=None,
    ) -> None:
        if not 0 <= corrupt_probability <= 1:
            raise ConfigurationError("corrupt_probability must be in [0, 1]")
        corruptions = tuple(corruptions) if corruptions else self.CORRUPTIONS
        unknown = set(corruptions) - set(self.CORRUPTIONS)
        if unknown:
            raise ConfigurationError(
                f"unknown corruption modes {sorted(unknown)}; choose from "
                f"{self.CORRUPTIONS}"
            )
        self.inner = inner
        self.tenant_id = inner.tenant_id
        self.racks = inner.racks
        self.corrupt_probability = corrupt_probability
        self.corruptions = corruptions
        self._rng = rng
        self.corrupted_bids = 0

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    @property
    def participates(self) -> bool:
        return self.inner.participates

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        # Same contract as OverdrawingTenant.prepare: a fresh run must
        # not inherit the previous run's corruption tally.
        self.corrupted_bids = 0
        self.inner.prepare(slots, rng)

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        return self.inner.needed_spot_w(slot)

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        return self.inner.value_curves(slot)

    def execute_slot(
        self, slot: int, budgets_w: Mapping[str, float], slot_seconds: float
    ) -> dict[str, SlotPerformance]:
        return self.inner.execute_slot(slot, budgets_w, slot_seconds)

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        bundle = self.inner.make_bid(slot, predicted_price)
        if bundle is None:
            return None
        if self._rng.random() >= self.corrupt_probability:
            return bundle
        mode = self.corruptions[int(self._rng.integers(len(self.corruptions)))]
        rack_bids = list(bundle.rack_bids)
        rack_bids[0] = self._corrupt(rack_bids[0], mode)
        self.corrupted_bids += 1
        return TenantBid(
            tenant_id=bundle.tenant_id, rack_bids=tuple(rack_bids)
        )

    @staticmethod
    def _corrupt(bid, mode: str):
        fn = bid.demand
        if type(fn) is LinearBid:
            params = fn.as_parameters()
        elif type(fn) is StepBid:
            params = (fn.demand_w, fn.price_cap, fn.demand_w, fn.price_cap)
        else:
            params = (fn.max_demand_w, 0.0, 0.0, fn.max_price)
        corrupted = LinearBid(*params)
        if mode == "non_finite":
            corrupted.d_max_w = float("nan")
        elif mode == "inverted_prices":
            corrupted.q_min = corrupted.q_max + 1.0
        elif mode == "inverted_quantities":
            corrupted.d_min_w = corrupted.d_max_w + 1.0
        elif mode == "negative_value":
            corrupted.q_min = -1.0
        else:  # exceeds_rack_cap
            corrupted.d_max_w = bid.rack_cap_w * 10.0 + 1.0
            corrupted.d_min_w = min(corrupted.d_min_w, corrupted.d_max_w)
        return dataclasses.replace(bid, demand=corrupted)
