"""A misbehaving tenant wrapper for enforcement testing.

Real tenants own their servers, so nothing physically stops one from
drawing above its enforced budget — that is precisely why the paper's
exception handling includes warnings and involuntary power cuts.
:class:`OverdrawingTenant` wraps any tenant and makes its racks overdraw
with a configurable probability, bounded by the rack's physical
capacity, so enforcement and emergency accounting can be exercised
end to end.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.core.bids import TenantBid
from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError
from repro.tenants.tenant import Tenant
from repro.workloads.base import SlotPerformance

__all__ = ["OverdrawingTenant"]


class OverdrawingTenant(Tenant):
    """Delegating wrapper whose racks sometimes exceed their budget.

    Args:
        inner: The well-behaved tenant being wrapped.
        overdraw_probability: Per-rack-per-slot probability of drawing
            above the enforced budget.
        overdraw_fraction: Overdraw magnitude as a fraction of the
            budget (clamped to the rack's physical capacity).
        rng: Random source.
    """

    def __init__(
        self,
        inner: Tenant,
        overdraw_probability: float,
        overdraw_fraction: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0 <= overdraw_probability <= 1:
            raise ConfigurationError("overdraw_probability must be in [0, 1]")
        if overdraw_fraction <= 0:
            raise ConfigurationError("overdraw_fraction must be positive")
        # Intentionally skip Tenant.__init__ validation duplication: the
        # wrapper presents the inner tenant's identity and racks.
        self.inner = inner
        self.tenant_id = inner.tenant_id
        self.racks = inner.racks
        self.overdraw_probability = overdraw_probability
        self.overdraw_fraction = overdraw_fraction
        self._rng = rng
        self.overdraw_slots = 0

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    @property
    def participates(self) -> bool:
        return self.inner.participates

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        self.inner.prepare(slots, rng)

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        return self.inner.needed_spot_w(slot)

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        return self.inner.value_curves(slot)

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        return self.inner.make_bid(slot, predicted_price)

    def execute_slot(
        self, slot: int, budgets_w: Mapping[str, float], slot_seconds: float
    ) -> dict[str, SlotPerformance]:
        outcomes = self.inner.execute_slot(slot, budgets_w, slot_seconds)
        physical = {
            rack.rack_id: rack.guaranteed_w + rack.max_spot_w
            for rack in self.racks
        }
        adjusted: dict[str, SlotPerformance] = {}
        for rack_id, perf in outcomes.items():
            if self._rng.random() < self.overdraw_probability:
                budget = budgets_w.get(
                    rack_id,
                    next(
                        r.guaranteed_w for r in self.racks if r.rack_id == rack_id
                    ),
                )
                rogue = min(
                    budget * (1 + self.overdraw_fraction), physical[rack_id]
                )
                if rogue > perf.power_w:
                    self.overdraw_slots += 1
                    perf = dataclasses.replace(perf, power_w=rogue)
            adjusted[rack_id] = perf
        return adjusted
