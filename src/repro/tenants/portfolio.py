"""Tenant rack portfolios: the per-rack state a tenant manages.

A tenant owns one or more racks, each with its own power model and
workload; the bundle is what the tenant bids for jointly (paper Section
III-B3).  :class:`TenantRack` binds a rack's identity to the models the
tenant-side logic needs, and :class:`RackBidContext` is the per-slot
snapshot handed to a bidding strategy.
"""

from __future__ import annotations

import dataclasses

from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel
from repro.workloads.base import Workload

__all__ = ["TenantRack", "RackBidContext"]


@dataclasses.dataclass
class TenantRack:
    """One rack in a tenant's portfolio.

    Attributes:
        rack_id: Facility-wide rack identifier.
        pdu_id: PDU feeding the rack.
        guaranteed_w: The tenant's subscription on this rack.
        max_spot_w: Physical spot headroom the rack PDU can unlock
            (``P_r^R``).
        power_model: The rack's utilization/power model.
        workload: The workload running on the rack.
    """

    rack_id: str
    pdu_id: str
    guaranteed_w: float
    max_spot_w: float
    power_model: ServerPowerModel
    workload: Workload

    def __post_init__(self) -> None:
        if self.guaranteed_w <= 0:
            raise ConfigurationError(
                f"rack {self.rack_id}: guaranteed_w must be positive"
            )
        if self.max_spot_w < 0:
            raise ConfigurationError(
                f"rack {self.rack_id}: max_spot_w must be >= 0"
            )

    @property
    def useful_spot_w(self) -> float:
        """Spot capacity the rack can actually convert into performance:
        bounded by both the rack PDU headroom and the workload's peak
        draw above the subscription."""
        return max(
            0.0,
            min(self.max_spot_w, self.power_model.peak_w - self.guaranteed_w),
        )


@dataclasses.dataclass(frozen=True)
class RackBidContext:
    """Everything a bidding strategy may use for one rack in one slot.

    Attributes:
        rack: The rack being bid for.
        needed_w: Extra power (beyond guaranteed) the workload wants this
            slot; the "simple strategy" bids exactly this.
        value_curve: The tenant's value curve for spot capacity on this
            rack at this slot's workload intensity.
        q_low: The tenant's low price anchor — the price at/below which
            it wants its maximum quantity, $/kW/h.
        q_high: The tenant's maximum acceptable price, $/kW/h (the
            paper's guideline caps this at the amortised guaranteed-
            capacity rate, or above it for SLO-critical sprinting).
        predicted_price: Tenant-side market-price forecast, if any.
    """

    rack: TenantRack
    needed_w: float
    value_curve: SpotValueCurve
    q_low: float
    q_high: float
    predicted_price: float | None = None
