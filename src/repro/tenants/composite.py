"""Composite tenants: both opportunistic *and* sprinting at once.

"Thus, a tenant can be both opportunistic and sprinting" (paper §II-C):
a company may run a latency-critical front end on some racks and batch
analytics on others, buying spot capacity for both under one account.
:class:`CompositeTenant` combines any participating tenants into a
single billing identity: bids merge into one bundle, spot needs and
value curves union, and execution fans out to the parts.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.bids import RackBid, TenantBid
from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError
from repro.tenants.tenant import Tenant
from repro.workloads.base import SlotPerformance

__all__ = ["CompositeTenant"]


class CompositeTenant(Tenant):
    """Several tenant behaviours under one tenant identity.

    Args:
        tenant_id: The combined identity (used for billing).
        parts: The participating sub-tenants being combined.  Their own
            ``tenant_id``s become internal labels; every rack they own
            is re-attributed to the composite.
    """

    def __init__(self, tenant_id: str, parts: list[Tenant]) -> None:
        if not parts:
            raise ConfigurationError("composite needs at least one part")
        for part in parts:
            if not part.participates:
                raise ConfigurationError(
                    f"part {part.tenant_id!r} does not participate in the "
                    "spot market; composing it is meaningless"
                )
        racks = [rack for part in parts for rack in part.racks]
        super().__init__(tenant_id, racks)
        self.parts = parts
        self._owner_of = {
            rack.rack_id: part for part in parts for rack in part.racks
        }

    @property
    def kind(self) -> str:  # type: ignore[override]
        """The mixed-class label; ``"sprinting"`` wins for reporting
        purposes when both classes are present (the SLO-critical side is
        what headline latency metrics track)."""
        kinds = {part.kind for part in self.parts}
        if kinds == {"sprinting"}:
            return "sprinting"
        if kinds == {"opportunistic"}:
            return "opportunistic"
        return "sprinting"

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        from repro.config import spawn_rngs

        for part, part_rng in zip(self.parts, spawn_rngs(rng, len(self.parts))):
            part.prepare(slots, part_rng)

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        needed: dict[str, float] = {}
        for part in self.parts:
            needed.update(part.needed_spot_w(slot))
        return needed

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        curves: dict[str, SpotValueCurve] = {}
        for part in self.parts:
            curves.update(part.value_curves(slot))
        return curves

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        rack_bids: list[RackBid] = []
        for part in self.parts:
            bid = part.make_bid(slot, predicted_price)
            if bid is None:
                continue
            for rack_bid in bid.rack_bids:
                # Re-attribute to the composite identity for billing.
                rack_bids.append(
                    RackBid(
                        rack_id=rack_bid.rack_id,
                        pdu_id=rack_bid.pdu_id,
                        tenant_id=self.tenant_id,
                        demand=rack_bid.demand,
                        rack_cap_w=rack_bid.rack_cap_w,
                    )
                )
        if not rack_bids:
            return None
        return TenantBid(tenant_id=self.tenant_id, rack_bids=tuple(rack_bids))

    def execute_slot(
        self, slot: int, budgets_w: Mapping[str, float], slot_seconds: float
    ) -> dict[str, SlotPerformance]:
        outcomes: dict[str, SlotPerformance] = {}
        for part in self.parts:
            part_budgets = {
                rack.rack_id: budgets_w.get(rack.rack_id, rack.guaranteed_w)
                for rack in part.racks
            }
            outcomes.update(
                part.execute_slot(slot, part_budgets, slot_seconds)
            )
        return outcomes
