"""Tenant behaviour: portfolios, bidding strategies, cost calibration,
and the sprinting / opportunistic / non-participating tenant models.
"""

from repro.tenants.bundled import BundledSprintingTenant, TierWorkload
from repro.tenants.composite import CompositeTenant
from repro.tenants.misbehaving import MalformedBidTenant, OverdrawingTenant
from repro.tenants.bidding import (
    BiddingStrategy,
    FullCurveStrategy,
    LinearElasticStrategy,
    PricePredictionStrategy,
    SimpleNeededPowerStrategy,
    StepStrategy,
)
from repro.tenants.calibration import (
    calibrate_opportunistic_cost,
    calibrate_sprinting_cost,
)
from repro.tenants.portfolio import RackBidContext, TenantRack
from repro.tenants.tenant import (
    NonParticipatingTenant,
    OpportunisticTenant,
    SprintingTenant,
    Tenant,
)

__all__ = [
    "BiddingStrategy",
    "BundledSprintingTenant",
    "CompositeTenant",
    "FullCurveStrategy",
    "LinearElasticStrategy",
    "MalformedBidTenant",
    "NonParticipatingTenant",
    "OpportunisticTenant",
    "OverdrawingTenant",
    "PricePredictionStrategy",
    "RackBidContext",
    "SimpleNeededPowerStrategy",
    "SprintingTenant",
    "StepStrategy",
    "Tenant",
    "TenantRack",
    "TierWorkload",
    "calibrate_opportunistic_cost",
    "calibrate_sprinting_cost",
]
