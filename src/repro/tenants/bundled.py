"""Bundled multi-rack bidding for tiered services (paper §III-B3, Fig. 4).

"For a tenant, the power budgets for multiple racks jointly determine
the application performance (e.g., latency of a three-tier web service,
with each tier housed in one rack)."  The paper's guideline: find the
optimal spot-demand *vector* across the racks at each price, then bid
per-rack LinearBids joined affinely between two shared price anchors —
``(D_max,1..K, q_min)`` and ``(D_min,1..K, q_max)``.

:class:`BundledSprintingTenant` implements exactly that:

* the end-to-end tail latency is the sum of per-tier latencies, all
  tiers seeing the same request stream;
* the joint value of a spot vector is the SLO cost-rate reduction of
  the end-to-end latency;
* the optimal vector at a price is computed by greedy marginal
  equalisation (allocate each watt to the tier whose marginal
  end-to-end gain is highest — optimal for concave per-tier gains);
* the bundled bid evaluates that vector at the tenant's two anchors.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.core.bids import RackBid, TenantBid
from repro.core.demand import LinearBid
from repro.economics.cost import SprintingCostModel
from repro.economics.valuation import SpotValueCurve
from repro.errors import ConfigurationError, WorkloadError
from repro.power.latency import LatencyModel
from repro.tenants.portfolio import TenantRack
from repro.tenants.tenant import Tenant
from repro.workloads.base import SlotPerformance, Workload

__all__ = ["TierWorkload", "BundledSprintingTenant"]

#: Grants below this are not worth bidding for.
_MIN_USEFUL_W = 0.5


class TierWorkload(Workload):
    """One tier of a multi-rack interactive service.

    All tiers share the request stream; the owning
    :class:`BundledSprintingTenant` installs the shared arrival series
    during :meth:`BundledSprintingTenant.prepare`.

    Args:
        name: Tier label (e.g. ``"web/frontend"``).
        latency_model: The tier's latency model.
        target_ms: The tier's share of the end-to-end planning target.
    """

    metric = "latency_ms"

    def __init__(
        self, name: str, latency_model: LatencyModel, target_ms: float
    ) -> None:
        super().__init__()
        if target_ms <= 0:
            raise ConfigurationError("target_ms must be positive")
        self.name = name
        self.latency_model = latency_model
        self.target_ms = target_ms
        self._rates: np.ndarray | None = None
        self._desired: np.ndarray | None = None

    def install_arrivals(self, rates: np.ndarray) -> None:
        """Install the shared arrival series (tenant-managed)."""
        self._rates = np.asarray(rates, dtype=float)
        self._desired = np.array(
            [
                self.latency_model.power_for_latency(self.target_ms, float(r))
                for r in self._rates
            ]
        )
        self._mark_prepared(int(self._rates.size))

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        if self._rates is None or self._rates.size != slots:
            raise WorkloadError(
                f"tier {self.name}: arrivals must be installed by the "
                "owning bundled tenant before prepare()"
            )
        # Arrivals already installed; prepare() validates alignment only.

    def intensity(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._rates[slot])

    def desired_power_w(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._desired[slot])

    def execute(self, slot: int, budget_w: float, slot_seconds: float) -> SlotPerformance:
        self._check_execution_order(slot)
        rate = float(self._rates[slot])
        desired = float(self._desired[slot])
        power = min(desired, budget_w)
        latency = self.latency_model.latency_ms(power, rate)
        return SlotPerformance(
            slot=slot,
            power_w=power,
            desired_power_w=desired,
            capped=desired > budget_w,
            metric=self.metric,
            value=latency,
            slo_violated=False,  # per-tier flag is meaningless; see tenant
            wanted_spot=desired > budget_w,
        )


@dataclasses.dataclass(frozen=True)
class _TierState:
    """Per-tier bookkeeping the tenant derives from its racks."""

    rack: TenantRack
    workload: TierWorkload


class BundledSprintingTenant(Tenant):
    """A sprinting tenant whose racks form one tiered service.

    Args:
        tenant_id: Name (e.g. ``"Shop"``).
        racks: One rack per tier, each carrying a :class:`TierWorkload`.
        arrival_trace: Shared request trace with
            ``generate(slots, rng) -> np.ndarray``.
        cost_model: SLO cost model on the *end-to-end* latency.
        q_low: Shared low price anchor, $/kW/h (Fig. 4's ``q_min``).
        q_high: Shared maximum acceptable price (Fig. 4's ``q_max``).
        slo_ms: End-to-end latency SLO.
        increment_w: Watt step of the greedy joint-demand optimisation.
    """

    kind = "sprinting"

    def __init__(
        self,
        tenant_id: str,
        racks: list[TenantRack],
        arrival_trace,
        cost_model: SprintingCostModel,
        q_low: float,
        q_high: float,
        slo_ms: float = 100.0,
        increment_w: float = 1.0,
    ) -> None:
        super().__init__(tenant_id, racks)
        for rack in racks:
            if not isinstance(rack.workload, TierWorkload):
                raise ConfigurationError(
                    f"tenant {tenant_id}: rack {rack.rack_id} must run a "
                    "TierWorkload"
                )
        if not 0 <= q_low <= q_high:
            raise ConfigurationError("need 0 <= q_low <= q_high")
        if increment_w <= 0:
            raise ConfigurationError("increment_w must be positive")
        self.arrival_trace = arrival_trace
        self.cost_model = cost_model
        self.q_low = q_low
        self.q_high = q_high
        self.slo_ms = slo_ms
        self.increment_w = increment_w
        self._tiers = [
            _TierState(rack=rack, workload=rack.workload) for rack in racks
        ]

    # ------------------------------------------------------------------
    # Trace management: one stream, all tiers
    # ------------------------------------------------------------------

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        rates = np.asarray(self.arrival_trace.generate(slots, rng), dtype=float)
        for tier in self._tiers:
            tier.workload.install_arrivals(rates)
            tier.workload.prepare(slots, rng)

    # ------------------------------------------------------------------
    # Joint valuation (Fig. 4)
    # ------------------------------------------------------------------

    def end_to_end_latency_ms(
        self, slot: int, budgets_w: Mapping[str, float]
    ) -> float:
        """Sum of tier latencies under given budgets."""
        total = 0.0
        for tier in self._tiers:
            budget = budgets_w.get(tier.rack.rack_id, tier.rack.guaranteed_w)
            rate = tier.workload.intensity(slot)
            power = min(tier.workload.desired_power_w(slot), budget)
            total += tier.workload.latency_model.latency_ms(power, rate)
        return total

    def _cost_rate(self, slot: int, spot_vector: Mapping[str, float]) -> float:
        budgets = {
            tier.rack.rack_id: tier.rack.guaranteed_w
            + spot_vector.get(tier.rack.rack_id, 0.0)
            for tier in self._tiers
        }
        latency = self.end_to_end_latency_ms(slot, budgets)
        rate = self._tiers[0].workload.intensity(slot)
        return self.cost_model.cost_rate_per_hour(latency, rate)

    def optimal_vector(
        self, slot: int, price_per_kw_hour: float
    ) -> dict[str, float]:
        """Greedy marginal-equalisation joint demand at a price.

        Allocates ``increment_w`` steps to the tier whose marginal
        end-to-end cost reduction per watt is highest, while it still
        exceeds the price; optimal for concave per-tier gains.
        """
        price_per_watt_hour = price_per_kw_hour / 1000.0
        vector = {tier.rack.rack_id: 0.0 for tier in self._tiers}
        current_cost = self._cost_rate(slot, vector)
        limits = {
            tier.rack.rack_id: tier.rack.useful_spot_w for tier in self._tiers
        }
        # Bounded by total headroom / increment steps.
        max_steps = int(sum(limits.values()) / self.increment_w) + len(limits)
        for _ in range(max_steps):
            best_rack = None
            best_gain = price_per_watt_hour * self.increment_w
            best_cost = current_cost
            for tier in self._tiers:
                rack_id = tier.rack.rack_id
                if vector[rack_id] + self.increment_w > limits[rack_id] + 1e-9:
                    continue
                trial = dict(vector)
                trial[rack_id] += self.increment_w
                trial_cost = self._cost_rate(slot, trial)
                gain = current_cost - trial_cost
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best_rack = rack_id
                    best_cost = trial_cost
            if best_rack is None:
                break
            vector[best_rack] += self.increment_w
            current_cost = best_cost
        return vector

    # ------------------------------------------------------------------
    # Tenant interface
    # ------------------------------------------------------------------

    def needed_spot_w(self, slot: int) -> dict[str, float]:
        needed: dict[str, float] = {}
        for tier in self._tiers:
            extra = (
                tier.workload.desired_power_w(slot) - tier.rack.guaranteed_w
            )
            if extra > 0 and tier.rack.useful_spot_w > 0:
                needed[tier.rack.rack_id] = min(extra, tier.rack.max_spot_w)
        return needed

    def value_curves(self, slot: int) -> dict[str, SpotValueCurve]:
        """Per-rack marginal view of the joint value (for MaxPerf).

        Each rack's curve is the joint cost reduction of allocating spot
        to that rack alone — a conservative (sub-additive) decomposition
        of the joint value.
        """
        curves: dict[str, SpotValueCurve] = {}
        base_cost = self._cost_rate(slot, {})
        for tier in self._tiers:
            headroom = tier.rack.useful_spot_w
            if headroom <= 0:
                continue
            grid = np.linspace(0.0, headroom, 25)
            gains = np.array(
                [
                    base_cost
                    - self._cost_rate(slot, {tier.rack.rack_id: float(d)})
                    for d in grid
                ]
            )
            curves[tier.rack.rack_id] = SpotValueCurve.from_gain_samples(
                tier.rack.guaranteed_w, grid, gains
            )
        return curves

    def make_bid(
        self, slot: int, predicted_price: float | None = None
    ) -> TenantBid | None:
        if not self.needed_spot_w(slot):
            return None
        d_max = self.optimal_vector(slot, self.q_low)
        d_min = self.optimal_vector(slot, self.q_high)
        rack_bids = []
        for tier in self._tiers:
            rack_id = tier.rack.rack_id
            hi = min(d_max.get(rack_id, 0.0), tier.rack.max_spot_w)
            lo = min(d_min.get(rack_id, 0.0), hi)
            if hi < _MIN_USEFUL_W:
                continue
            rack_bids.append(
                RackBid(
                    rack_id=rack_id,
                    pdu_id=tier.rack.pdu_id,
                    tenant_id=self.tenant_id,
                    demand=LinearBid(hi, self.q_low, lo, self.q_high),
                    rack_cap_w=tier.rack.max_spot_w,
                )
            )
        if not rack_bids:
            return None
        return TenantBid(tenant_id=self.tenant_id, rack_bids=tuple(rack_bids))

    def execute_slot(
        self, slot: int, budgets_w: Mapping[str, float], slot_seconds: float
    ) -> dict[str, SlotPerformance]:
        """Run the tiers and report the *end-to-end* latency on each rack.

        Every tier rack reports the same end-to-end value so downstream
        aggregation (which averages per-rack scores) sees the service's
        true performance regardless of how tiers split the budget.
        """
        tier_perfs = super().execute_slot(slot, budgets_w, slot_seconds)
        e2e = sum(perf.value for perf in tier_perfs.values())
        return {
            rack_id: dataclasses.replace(
                perf, value=e2e, slo_violated=e2e > self.slo_ms
            )
            for rack_id, perf in tier_perfs.items()
        }
