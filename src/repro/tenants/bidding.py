"""Tenant bidding strategies (paper Sections III-B3, V-C, V-D2).

A strategy turns a :class:`~repro.tenants.portfolio.RackBidContext` into
a demand function (or ``None`` to sit the slot out).  The implemented
strategies span the paper's comparisons:

* :class:`LinearElasticStrategy` — the SpotDC default: fit the paper's
  4-parameter piece-wise linear bid to the rack's true demand curve by
  evaluating the optimal demand at the tenant's two price anchors.
* :class:`SimpleNeededPowerStrategy` — the paper's "simple strategy":
  bid exactly the needed extra power with ``D_max = D_min`` and the
  amortised guaranteed-capacity rate as the maximum price.
* :class:`StepStrategy` — Amazon-style all-or-nothing (the StepBid
  comparison of Fig. 14).
* :class:`FullCurveStrategy` — submit the complete demand curve (the
  FullBid upper bound of Fig. 14).
* :class:`PricePredictionStrategy` — strategic re-bidding given a price
  forecast (Fig. 16): demand exactly the optimum for the predicted
  price.
"""

from __future__ import annotations

import abc

from repro.core.demand import DemandFunction, FullBid, LinearBid, StepBid
from repro.errors import BidError
from repro.tenants.portfolio import RackBidContext

__all__ = [
    "BiddingStrategy",
    "LinearElasticStrategy",
    "SimpleNeededPowerStrategy",
    "StepStrategy",
    "FullCurveStrategy",
    "PricePredictionStrategy",
]

#: Grants below this are not worth the bidding overhead.
_MIN_USEFUL_W = 0.5


class BiddingStrategy(abc.ABC):
    """Maps a rack's slot context to a demand function (or no bid)."""

    @abc.abstractmethod
    def make_rack_bid(self, ctx: RackBidContext) -> DemandFunction | None:
        """Build this slot's bid for one rack; ``None`` means no bid."""

    @staticmethod
    def _cap(ctx: RackBidContext, quantity_w: float) -> float:
        """Clip a quantity to the rack's physically grantable headroom."""
        return max(0.0, min(quantity_w, ctx.rack.max_spot_w))


class LinearElasticStrategy(BiddingStrategy):
    """SpotDC's default: a two-point secant fit of the true demand curve.

    ``D_max`` is the optimal demand at the tenant's low price anchor and
    ``D_min`` the optimal demand at its maximum acceptable price; joined
    linearly they approximate the concave true curve from below on the
    high-price side — conservative for the tenant.
    """

    def make_rack_bid(self, ctx: RackBidContext) -> DemandFunction | None:
        if ctx.q_high < ctx.q_low:
            raise BidError(f"q_high {ctx.q_high} below q_low {ctx.q_low}")
        d_max = self._cap(ctx, ctx.value_curve.optimal_demand_w(ctx.q_low))
        d_min = self._cap(ctx, ctx.value_curve.optimal_demand_w(ctx.q_high))
        d_min = min(d_min, d_max)
        if d_max < _MIN_USEFUL_W:
            return None
        return LinearBid(d_max, ctx.q_low, d_min, ctx.q_high)


class SimpleNeededPowerStrategy(BiddingStrategy):
    """The paper's no-profiling strategy: bid the needed power, flat.

    "Bid the needed extra power as spot capacity demand with
    ``D_max = D_min``, and set the amortized guaranteed capacity rate as
    maximum price" (Section III-B3).
    """

    def make_rack_bid(self, ctx: RackBidContext) -> DemandFunction | None:
        needed = self._cap(ctx, ctx.needed_w)
        if needed < _MIN_USEFUL_W:
            return None
        return LinearBid(needed, ctx.q_low, needed, ctx.q_high)


class StepStrategy(BiddingStrategy):
    """Amazon-style all-or-nothing: full quantity up to the price cap.

    The quantity is the same ``D_max`` the linear strategy would bid, so
    Fig. 14's comparison isolates the *shape* of the demand function.
    """

    def make_rack_bid(self, ctx: RackBidContext) -> DemandFunction | None:
        d_max = self._cap(ctx, ctx.value_curve.optimal_demand_w(ctx.q_low))
        if d_max < _MIN_USEFUL_W:
            return None
        return StepBid(d_max, ctx.q_high)


class FullCurveStrategy(BiddingStrategy):
    """Submit the rack's complete (true) demand curve.

    Rarely practical (Section III-B1) but the natural upper bound for
    the operator's profit under uniform pricing (Fig. 14's FullBid).
    """

    def __init__(self, grid_points: int = 120) -> None:
        if grid_points < 2:
            raise BidError("grid_points must be >= 2")
        self.grid_points = grid_points

    def make_rack_bid(self, ctx: RackBidContext) -> DemandFunction | None:
        max_d = self._cap(ctx, ctx.value_curve.max_spot_w)
        if max_d < _MIN_USEFUL_W:
            return None
        bid = FullBid.from_value_curve(
            ctx.value_curve.gain_per_hour,
            max_d,
            self.grid_points,
            price_cap=ctx.q_high,
        )
        if bid.demand_at(ctx.q_low) < _MIN_USEFUL_W:
            return None
        return bid


class PricePredictionStrategy(BiddingStrategy):
    """Strategic bidding with a market-price forecast (Fig. 16).

    With a forecast ``q_hat``, the tenant demands exactly its optimal
    quantity at that price, flat up to its acceptable maximum (raised to
    cover the forecast): it captures its optimum instead of the linear
    approximation's value.  Without a forecast it falls back to the
    wrapped default strategy.

    Args:
        fallback: Strategy used when no forecast is available yet.
    """

    def __init__(self, fallback: BiddingStrategy | None = None) -> None:
        self.fallback = fallback or LinearElasticStrategy()

    def make_rack_bid(self, ctx: RackBidContext) -> DemandFunction | None:
        q_hat = ctx.predicted_price
        if q_hat is None:
            return self.fallback.make_rack_bid(ctx)
        d_opt = self._cap(ctx, ctx.value_curve.optimal_demand_w(q_hat))
        if d_opt < _MIN_USEFUL_W:
            return self.fallback.make_rack_bid(ctx)
        q_cap = max(ctx.q_high, q_hat * 1.05)
        return LinearBid(d_opt, min(ctx.q_low, q_hat), d_opt, q_cap)
