"""Bring-your-own-trace adapters.

Operators evaluating SpotDC against their own telemetry don't want
synthetic generators — they want to replay measured series.  These
adapters wrap any 1-D sequence (or a CSV column) in the ``generate``
protocol the workloads expect, with optional resampling and scaling, so
a measured PDU power log or request-rate log drops straight into a
:class:`~repro.workloads.base.TracePowerWorkload`,
:class:`~repro.workloads.base.InteractiveWorkload`, or
:class:`~repro.workloads.base.BatchWorkload`.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ReplayTrace", "load_csv_column"]


class ReplayTrace:
    """Replays a measured series through the trace ``generate`` protocol.

    Args:
        samples: The measured series (any 1-D float sequence).
        scale: Multiplier applied to every sample (unit conversion /
            testbed scaling, as the paper scales its traces).
        wrap: When the requested horizon exceeds the series, ``True``
            tiles the series periodically; ``False`` raises.
        jitter_sigma: Optional relative Gaussian jitter (fraction of
            each sample) applied per replay using the caller's RNG —
            lets one measured trace stand in for several similar
            tenants.
    """

    def __init__(
        self,
        samples,
        scale: float = 1.0,
        wrap: bool = True,
        jitter_sigma: float = 0.0,
    ) -> None:
        data = np.asarray(samples, dtype=float).ravel()
        if data.size == 0:
            raise WorkloadError("replay trace needs at least one sample")
        if np.any(~np.isfinite(data)):
            raise WorkloadError("replay trace must be finite")
        if np.any(data < 0):
            raise WorkloadError("replay trace must be non-negative")
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        if jitter_sigma < 0:
            raise WorkloadError("jitter_sigma must be >= 0")
        self._data = data * scale
        self.wrap = wrap
        self.jitter_sigma = jitter_sigma

    @property
    def length(self) -> int:
        """Number of measured samples available."""
        return int(self._data.size)

    def generate(self, slots: int, rng: np.random.Generator) -> np.ndarray:
        """Produce ``slots`` samples by replaying (and maybe tiling)."""
        if slots <= 0:
            raise WorkloadError("slots must be positive")
        if slots > self._data.size and not self.wrap:
            raise WorkloadError(
                f"replay trace has {self._data.size} samples but {slots} "
                "were requested (pass wrap=True to tile)"
            )
        reps = -(-slots // self._data.size)  # ceil division
        series = np.tile(self._data, reps)[:slots].copy()
        if self.jitter_sigma > 0:
            noise = 1.0 + rng.normal(0.0, self.jitter_sigma, slots)
            series *= np.clip(noise, 0.0, None)
        return series


def load_csv_column(
    path: str | pathlib.Path,
    column: str | int = 0,
    skip_header: bool | None = None,
) -> np.ndarray:
    """Load one numeric column from a CSV file.

    Args:
        path: CSV file path.
        column: Column name (header row required) or 0-based index.
        skip_header: Force treating the first row as a header; by
            default it is auto-detected (non-numeric first row, or a
            column name was given).
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle) if row]
    if not rows:
        raise WorkloadError(f"{path}: empty CSV")
    header = rows[0]
    if isinstance(column, str):
        if column not in header:
            raise WorkloadError(
                f"{path}: column {column!r} not in header {header}"
            )
        index = header.index(column)
        body = rows[1:]
    else:
        index = int(column)
        if skip_header is None:
            try:
                float(header[index])
                body = rows
            except (ValueError, IndexError):
                body = rows[1:]
        else:
            body = rows[1:] if skip_header else rows
    values = []
    for line_no, row in enumerate(body, start=2):
        if index >= len(row):
            raise WorkloadError(f"{path}:{line_no}: missing column {index}")
        try:
            values.append(float(row[index]))
        except ValueError as exc:
            raise WorkloadError(
                f"{path}:{line_no}: non-numeric value {row[index]!r}"
            ) from exc
    if not values:
        raise WorkloadError(f"{path}: no data rows")
    return np.asarray(values)
