"""Workload abstractions: how a rack's work turns power into performance.

Two families cover the paper's tenant mix (Section II-C):

* :class:`InteractiveWorkload` — delay-sensitive services (web search,
  web serving) whose tail latency must meet an SLO; their owners are
  *sprinting* tenants.
* :class:`BatchWorkload` — delay-tolerant processing (Hadoop, graph
  analytics) with a work backlog; their owners are *opportunistic*
  tenants.

A workload is **stateful and slot-ordered**: :meth:`Workload.prepare`
materialises its trace for a run, and :meth:`Workload.execute` must be
called once per slot in order (batch backlogs evolve with the power
actually granted).
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.errors import WorkloadError
from repro.power.latency import LatencyModel
from repro.power.throughput import ThroughputModel

__all__ = [
    "SlotPerformance",
    "Workload",
    "InteractiveWorkload",
    "BatchWorkload",
    "TracePowerWorkload",
]


@dataclasses.dataclass(frozen=True)
class SlotPerformance:
    """Outcome of running one workload for one slot.

    Attributes:
        slot: Slot index.
        power_w: Power actually drawn.
        desired_power_w: Power the workload wanted.
        capped: Whether the budget forced a power reduction.
        metric: ``"latency_ms"`` or ``"throughput"``.
        value: Tail latency in ms (lower better) or achieved processing
            rate in units/s (higher better).
        slo_violated: For interactive workloads, whether the SLO was
            missed; always ``False`` for batch.
        wanted_spot: Whether the workload wanted capacity beyond the
            rack's guaranteed budget this slot (the participation
            signal).
    """

    slot: int
    power_w: float
    desired_power_w: float
    capped: bool
    metric: str
    value: float
    slo_violated: bool
    wanted_spot: bool


class Workload(abc.ABC):
    """Base class for rack workloads."""

    #: Human-readable workload name (e.g. ``"search"``).
    name: str = "workload"
    #: Performance metric family: ``"latency_ms"`` or ``"throughput"``.
    metric: str = "latency_ms"

    def __init__(self) -> None:
        self._prepared_slots = 0
        self._next_slot = 0

    @abc.abstractmethod
    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        """Materialise the workload trace for a run of ``slots`` slots."""

    @abc.abstractmethod
    def intensity(self, slot: int) -> float:
        """Workload intensity at a slot (requests/s or arrival units/s)."""

    @abc.abstractmethod
    def desired_power_w(self, slot: int) -> float:
        """Power the workload wants at a slot, ignoring budgets."""

    @abc.abstractmethod
    def execute(self, slot: int, budget_w: float, slot_seconds: float) -> SlotPerformance:
        """Run one slot under an enforced budget and report performance."""

    # ------------------------------------------------------------------
    # Shared slot-ordering bookkeeping
    # ------------------------------------------------------------------

    def _mark_prepared(self, slots: int) -> None:
        if slots <= 0:
            raise WorkloadError("slots must be positive")
        self._prepared_slots = slots
        self._next_slot = 0

    def _check_slot(self, slot: int) -> None:
        if self._prepared_slots == 0:
            raise WorkloadError(f"{self.name}: prepare() must be called first")
        if not 0 <= slot < self._prepared_slots:
            raise WorkloadError(
                f"{self.name}: slot {slot} outside prepared range "
                f"[0, {self._prepared_slots})"
            )

    def _check_execution_order(self, slot: int) -> None:
        self._check_slot(slot)
        if slot != self._next_slot:
            raise WorkloadError(
                f"{self.name}: execute() called for slot {slot}, expected "
                f"{self._next_slot} (slots must run in order, exactly once)"
            )
        self._next_slot += 1


class InteractiveWorkload(Workload):
    """A latency-SLO service: search, web serving.

    The workload wants the smallest power budget that keeps tail latency
    within ``target_ms`` (the SLO with a safety margin); with less power
    it runs capped and latency rises.

    Args:
        name: Workload label.
        latency_model: The rack's latency model.
        arrival_trace: Object with ``generate(slots, rng) -> np.ndarray``
            of request rates.
        slo_ms: The SLO threshold (violation flagging).
        target_ms: Planning target; defaults to 90% of the SLO so the
            desired budget leaves headroom against model error.
    """

    metric = "latency_ms"

    def __init__(
        self,
        name: str,
        latency_model: LatencyModel,
        arrival_trace,
        slo_ms: float = 100.0,
        target_ms: float | None = None,
    ) -> None:
        super().__init__()
        if slo_ms <= 0:
            raise WorkloadError("slo_ms must be positive")
        self.name = name
        self.latency_model = latency_model
        self.arrival_trace = arrival_trace
        self.slo_ms = slo_ms
        self.target_ms = target_ms if target_ms is not None else 0.9 * slo_ms
        if self.target_ms <= 0:
            raise WorkloadError("target_ms must be positive")
        self._rates: np.ndarray | None = None
        self._desired: np.ndarray | None = None

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        self._rates = np.asarray(self.arrival_trace.generate(slots, rng), dtype=float)
        self._desired = np.array(
            [
                self.latency_model.power_for_latency(self.target_ms, float(r))
                for r in self._rates
            ]
        )
        self._mark_prepared(slots)

    def intensity(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._rates[slot])

    def desired_power_w(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._desired[slot])

    def execute(self, slot: int, budget_w: float, slot_seconds: float) -> SlotPerformance:
        self._check_execution_order(slot)
        rate = float(self._rates[slot])
        desired = float(self._desired[slot])
        power = min(desired, budget_w)
        latency = self.latency_model.latency_ms(power, rate)
        return SlotPerformance(
            slot=slot,
            power_w=power,
            desired_power_w=desired,
            capped=desired > budget_w,
            metric=self.metric,
            value=latency,
            slo_violated=latency > self.slo_ms,
            wanted_spot=desired > budget_w,
        )


class BatchWorkload(Workload):
    """A backlog-driven batch workload: Hadoop jobs, graph analytics.

    Work arrives per the trace; the workload drains it as fast as the
    enforced budget allows whenever a backlog exists, and idles at the
    power needed to keep up with arrivals otherwise.  Its *desired*
    power is full peak whenever the backlog exceeds
    ``sprint_backlog_s`` seconds of full-rate work — those are the slots
    an opportunistic tenant wants spot capacity for.

    Args:
        name: Workload label.
        throughput_model: The rack's processing-rate model.
        arrival_trace: Object with ``generate(slots, rng) -> np.ndarray``
            of work-arrival rates (units/s).
        sprint_backlog_s: Backlog (in seconds of full-rate processing)
            beyond which the tenant wants to sprint.
    """

    metric = "throughput"

    def __init__(
        self,
        name: str,
        throughput_model: ThroughputModel,
        arrival_trace,
        sprint_backlog_s: float = 30.0,
    ) -> None:
        super().__init__()
        if sprint_backlog_s < 0:
            raise WorkloadError("sprint_backlog_s must be >= 0")
        self.name = name
        self.throughput_model = throughput_model
        self.arrival_trace = arrival_trace
        self.sprint_backlog_s = sprint_backlog_s
        self._arrivals: np.ndarray | None = None
        self.backlog_units = 0.0

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        self._arrivals = np.asarray(
            self.arrival_trace.generate(slots, rng), dtype=float
        )
        self.backlog_units = 0.0
        self._mark_prepared(slots)

    def intensity(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._arrivals[slot])

    def _sprint_threshold_units(self) -> float:
        return self.sprint_backlog_s * self.throughput_model.rate_max

    def wants_sprint(self, slot: int) -> bool:
        """Whether the current backlog is worth buying spot capacity for."""
        self._check_slot(slot)
        return self.backlog_units > self._sprint_threshold_units()

    def desired_power_w(self, slot: int) -> float:
        self._check_slot(slot)
        if self.wants_sprint(slot):
            return self.throughput_model.power_model.peak_w
        # Keep up with arrivals (plus drain any small residual backlog).
        rate_needed = float(self._arrivals[slot])
        if self.backlog_units > 0:
            rate_needed = min(
                self.throughput_model.rate_max,
                rate_needed + self.backlog_units / 60.0,
            )
        return self.throughput_model.power_for_rate(rate_needed)

    def execute(self, slot: int, budget_w: float, slot_seconds: float) -> SlotPerformance:
        self._check_execution_order(slot)
        if slot_seconds <= 0:
            raise WorkloadError("slot_seconds must be positive")
        desired = self.desired_power_w(slot)
        wanted_spot = desired > budget_w
        power = min(desired, budget_w)
        rate = self.throughput_model.rate_at(power)
        arrivals = float(self._arrivals[slot]) * slot_seconds
        available = self.backlog_units + arrivals
        processed = min(available, rate * slot_seconds)
        self.backlog_units = available - processed
        achieved_rate = processed / slot_seconds
        # Power actually drawn reflects the work actually done, not the
        # provisional desired level (an idle rack draws idle power, a
        # partially busy rack draws the power its achieved rate needs).
        idle = self.throughput_model.power_model.idle_w
        if processed > 0:
            actual_power = self.throughput_model.power_for_rate(achieved_rate)
        else:
            actual_power = idle
        actual_power = max(idle, min(actual_power, max(budget_w, idle)))
        return SlotPerformance(
            slot=slot,
            power_w=actual_power,
            desired_power_w=desired,
            capped=wanted_spot,
            metric=self.metric,
            value=achieved_rate,
            slo_violated=False,
            wanted_spot=wanted_spot,
        )


class TracePowerWorkload(Workload):
    """A workload whose power draw replays a trace directly.

    Used for non-participating tenants ("Other" in the paper's Table I):
    their aggregate draw comes from a measured/generated power trace and
    they never want spot capacity.  Performance is not meaningful for
    these groups; the metric reported is the draw itself.

    Args:
        name: Workload label.
        power_trace: Object with ``generate(slots, rng) -> np.ndarray``
            of power samples in watts.
    """

    metric = "power_w"

    def __init__(self, name: str, power_trace) -> None:
        super().__init__()
        self.name = name
        self.power_trace = power_trace
        self._power: np.ndarray | None = None

    def prepare(self, slots: int, rng: np.random.Generator) -> None:
        self._power = np.asarray(self.power_trace.generate(slots, rng), dtype=float)
        self._mark_prepared(slots)

    def intensity(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._power[slot])

    def desired_power_w(self, slot: int) -> float:
        self._check_slot(slot)
        return float(self._power[slot])

    def execute(self, slot: int, budget_w: float, slot_seconds: float) -> SlotPerformance:
        self._check_execution_order(slot)
        desired = float(self._power[slot])
        power = min(desired, budget_w)
        return SlotPerformance(
            slot=slot,
            power_w=power,
            desired_power_w=desired,
            capped=desired > budget_w,
            metric=self.metric,
            value=power,
            slo_violated=False,
            wanted_spot=False,
        )
