"""Web-search workload (CloudSuite Nutch benchmark stand-in).

The paper's Search tenants run the CloudSuite web-search benchmark (one
front-end, five index-serving VMs) and care about **p99 latency** against
a 100 ms SLO.  Search is the most latency-critical tenant class and bids
the highest spot prices (Section IV-C).

This module builds an :class:`~repro.workloads.base.InteractiveWorkload`
with a latency model calibrated to the search regime: a steep tail
(p99 => large queueing constant) and a moderate deterministic floor.
"""

from __future__ import annotations

from repro.config import SLO_LATENCY_MS
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.workloads.base import InteractiveWorkload
from repro.workloads.traces import GoogleStyleArrivalTrace

__all__ = ["SEARCH_DEFAULTS", "make_search_latency_model", "make_search_workload"]

#: Calibration constants for the search latency model.  With these, a
#: rack at full power serves ~75% load at ~55-70 ms p99, while capping to
#: the paper's under-provisioned subscription pushes p99 past the 100 ms
#: SLO during traffic peaks — the Fig. 8 / Fig. 11 regime.
SEARCH_DEFAULTS = {
    "mu_max_per_watt": 1.2,  # requests/s of service rate per dynamic watt
    "d_min_ms": 25.0,
    "alpha": 2.0,
    "tail_const_ms_rps": 5000.0,  # p99: ln(100) ~ 4.6 x a ~1s base constant
    "base_fraction": 0.375,
    "diurnal_amplitude": 0.11,
    "surge_probability": 0.018,
    "surge_magnitude": 0.28,
}


def make_search_latency_model(power_model: ServerPowerModel) -> LatencyModel:
    """A p99 latency model for a search rack of the given power scale.

    Service capacity scales with the rack's dynamic power range so that
    testbed-scale racks (145 W subscriptions) and scaled-up racks both
    land in the same load regime.
    """
    return LatencyModel(
        power_model=power_model,
        mu_max_rps=SEARCH_DEFAULTS["mu_max_per_watt"] * power_model.dynamic_range_w,
        d_min_ms=SEARCH_DEFAULTS["d_min_ms"],
        alpha=SEARCH_DEFAULTS["alpha"],
        tail_const_ms_rps=SEARCH_DEFAULTS["tail_const_ms_rps"],
    )


def make_search_workload(
    name: str,
    power_model: ServerPowerModel,
    slo_ms: float = SLO_LATENCY_MS,
    phase: float = 0.0,
    slots_per_day: float = 24 * 60,
) -> InteractiveWorkload:
    """Build a search workload on a rack.

    Args:
        name: Workload instance label (e.g. ``"Search-1"``).
        power_model: The rack's power model (sets service capacity).
        slo_ms: Tail-latency SLO (paper: 100 ms).
        phase: Diurnal phase offset, to decorrelate multiple tenants.
        slots_per_day: Slots per diurnal cycle (matches the engine's
            slot length: 1440 for 1-min slots, 720 for 2-min slots).
    """
    latency_model = make_search_latency_model(power_model)
    trace = GoogleStyleArrivalTrace(
        max_rate_rps=latency_model.mu_max_rps,
        base_fraction=SEARCH_DEFAULTS["base_fraction"],
        diurnal_amplitude=SEARCH_DEFAULTS["diurnal_amplitude"],
        surge_probability=SEARCH_DEFAULTS["surge_probability"],
        surge_magnitude=SEARCH_DEFAULTS["surge_magnitude"],
        slots_per_day=slots_per_day,
        phase=phase,
    )
    return InteractiveWorkload(
        name=name,
        latency_model=latency_model,
        arrival_trace=trace,
        slo_ms=slo_ms,
    )
