"""Workload substrate: trace generators and the four workload families
(search, web serving, Hadoop WordCount/TeraSort, graph analytics) from
the paper's testbed (Table I).
"""

from repro.workloads.base import (
    BatchWorkload,
    InteractiveWorkload,
    SlotPerformance,
    TracePowerWorkload,
    Workload,
)
from repro.workloads.graph import make_graph_workload
from repro.workloads.replay import ReplayTrace, load_csv_column
from repro.workloads.hadoop import make_terasort_workload, make_wordcount_workload
from repro.workloads.search import make_search_latency_model, make_search_workload
from repro.workloads.traces import (
    BatchBacklogTrace,
    ColoPowerTrace,
    GoogleStyleArrivalTrace,
    VolatilePowerTrace,
)
from repro.workloads.web import make_web_latency_model, make_web_workload

__all__ = [
    "BatchBacklogTrace",
    "BatchWorkload",
    "ColoPowerTrace",
    "GoogleStyleArrivalTrace",
    "InteractiveWorkload",
    "ReplayTrace",
    "SlotPerformance",
    "TracePowerWorkload",
    "VolatilePowerTrace",
    "Workload",
    "load_csv_column",
    "make_graph_workload",
    "make_search_latency_model",
    "make_search_workload",
    "make_terasort_workload",
    "make_web_latency_model",
    "make_web_workload",
    "make_wordcount_workload",
]
