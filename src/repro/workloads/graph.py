"""Graph-analytics workload (PowerGraph on a Twitter graph stand-in).

The paper's GraphAnalytics tenants run PowerGraph over an 11M-node
Twitter dataset on two 16 GB servers, measuring **node processing rate
(nodes/s)**.  Iterative graph processing is memory-bandwidth and
synchronisation bound, so its power scaling is the most sub-linear of
the batch workloads.
"""

from __future__ import annotations

from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel
from repro.workloads.base import BatchWorkload
from repro.workloads.traces import BatchBacklogTrace

__all__ = ["GRAPH_DEFAULTS", "make_graph_workload"]

#: PowerGraph-style calibration: thousands of nodes/s at testbed scale,
#: noticeably sub-linear in power (synchronisation barriers).
GRAPH_DEFAULTS = {
    "rate_max_knodes_per_watt": 0.8,  # kilo-nodes/s per dynamic watt
    "scaling_exponent": 0.85,
    "mean_load_fraction": 0.38,
    "burst_duty_cycle": 0.33,
    "burst_multiplier": 2.0,
}


def make_graph_workload(
    name: str,
    power_model: ServerPowerModel,
    sprint_backlog_s: float = 30.0,
) -> BatchWorkload:
    """Build a graph-analytics workload (kilo-nodes/s metric) on a rack.

    Args:
        name: Instance label (e.g. ``"Graph-1"``).
        power_model: The rack's power model.
        sprint_backlog_s: Backlog depth (seconds of full-rate work)
            beyond which the tenant wants spot capacity.
    """
    rate_max = GRAPH_DEFAULTS["rate_max_knodes_per_watt"] * power_model.dynamic_range_w
    model = ThroughputModel(
        power_model=power_model,
        rate_max=rate_max,
        scaling_exponent=GRAPH_DEFAULTS["scaling_exponent"],
    )
    trace = BatchBacklogTrace(
        mean_rate_units_per_s=GRAPH_DEFAULTS["mean_load_fraction"] * rate_max,
        burst_duty_cycle=GRAPH_DEFAULTS["burst_duty_cycle"],
        burst_multiplier=GRAPH_DEFAULTS["burst_multiplier"],
    )
    return BatchWorkload(
        name=name,
        throughput_model=model,
        arrival_trace=trace,
        sprint_backlog_s=sprint_backlog_s,
    )
