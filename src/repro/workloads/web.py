"""Web-serving workload (CloudSuite Web 2.0 social-event app stand-in).

The paper's Web tenant runs the CloudSuite web-serving benchmark (Nginx
front-end, MySQL back-end) and reports **p90 latency** (the only metric
its load generator exposed) against the same 100 ms SLO.  Web serving is
latency-sensitive but less extreme than search: it bids a *medium* price
(Section IV-C).

The p90 percentile is modelled with a smaller queueing constant than the
search p99 model (ln(10) vs ln(100) in the exponential-tail view).
"""

from __future__ import annotations

from repro.config import SLO_LATENCY_MS
from repro.power.latency import LatencyModel
from repro.power.server import ServerPowerModel
from repro.workloads.base import InteractiveWorkload
from repro.workloads.traces import GoogleStyleArrivalTrace

__all__ = ["WEB_DEFAULTS", "make_web_latency_model", "make_web_workload"]

#: Calibration constants for the web-serving p90 latency model.
WEB_DEFAULTS = {
    "mu_max_per_watt": 1.5,
    "d_min_ms": 30.0,
    "alpha": 2.0,
    "tail_const_ms_rps": 2500.0,  # p90 tail: ~half the p99 constant
    "base_fraction": 0.445,
    "diurnal_amplitude": 0.12,
    "surge_probability": 0.02,
    "surge_magnitude": 0.26,
}


def make_web_latency_model(power_model: ServerPowerModel) -> LatencyModel:
    """A p90 latency model for a web-serving rack."""
    return LatencyModel(
        power_model=power_model,
        mu_max_rps=WEB_DEFAULTS["mu_max_per_watt"] * power_model.dynamic_range_w,
        d_min_ms=WEB_DEFAULTS["d_min_ms"],
        alpha=WEB_DEFAULTS["alpha"],
        tail_const_ms_rps=WEB_DEFAULTS["tail_const_ms_rps"],
    )


def make_web_workload(
    name: str,
    power_model: ServerPowerModel,
    slo_ms: float = SLO_LATENCY_MS,
    phase: float = 0.35,
    slots_per_day: float = 24 * 60,
) -> InteractiveWorkload:
    """Build a web-serving workload on a rack.

    Args:
        name: Workload instance label (e.g. ``"Web"``).
        power_model: The rack's power model.
        slo_ms: p90 latency SLO (paper: 100 ms).
        phase: Diurnal phase offset.
        slots_per_day: Slots per diurnal cycle.
    """
    latency_model = make_web_latency_model(power_model)
    trace = GoogleStyleArrivalTrace(
        max_rate_rps=latency_model.mu_max_rps,
        base_fraction=WEB_DEFAULTS["base_fraction"],
        diurnal_amplitude=WEB_DEFAULTS["diurnal_amplitude"],
        surge_probability=WEB_DEFAULTS["surge_probability"],
        surge_magnitude=WEB_DEFAULTS["surge_magnitude"],
        slots_per_day=slots_per_day,
        phase=phase,
    )
    return InteractiveWorkload(
        name=name,
        latency_model=latency_model,
        arrival_trace=trace,
        slo_ms=slo_ms,
    )
