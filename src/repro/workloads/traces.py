"""Synthetic trace generators standing in for the paper's measured traces.

The paper's year-long evaluation uses three proprietary traces:

* a scaled 3-month power trace from a commercial multi-tenant data
  center (non-participating tenants' power) — here
  :class:`ColoPowerTrace`;
* a scaled request-arrival trace from Google services (sprinting
  tenants) — here :class:`GoogleStyleArrivalTrace`;
* a university back-end data-processing trace (opportunistic tenants) —
  here :class:`BatchBacklogTrace`.

Each generator is seeded and reproduces the *properties the market
actually exercises*: diurnal/weekly periodicity, bounded slot-to-slot
variation at the PDU level (±2.5%/min for 99% of slots, Fig. 7a), and
calibrated duty cycles for when tenants want spot capacity (~15% of
slots for sprinting, ~30% for opportunistic — Section V-B).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "ColoPowerTrace",
    "GoogleStyleArrivalTrace",
    "BatchBacklogTrace",
    "VolatilePowerTrace",
]

_SLOTS_PER_DAY_1MIN = 24 * 60


def _diurnal(slots: int, slots_per_day: float, phase: float) -> np.ndarray:
    """A unit-amplitude day/night pattern with a weekly modulation."""
    t = np.arange(slots, dtype=float)
    daily = np.sin(2 * np.pi * (t / slots_per_day + phase))
    weekly = 0.25 * np.sin(2 * np.pi * (t / (7 * slots_per_day) + phase / 3))
    return 0.5 * (daily + weekly) / 1.25 + 0.5  # normalised to [0, 1]


def _smooth(series: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge padding (ramps step changes)."""
    if window <= 1 or series.size < window:
        return series
    kernel = np.ones(window) / window
    padded = np.concatenate(
        [np.full(window // 2, series[0]), series, np.full(window // 2, series[-1])]
    )
    return np.convolve(padded, kernel, mode="valid")[: series.size]


def _ar1(
    rng: np.random.Generator, slots: int, sigma: float, correlation: float
) -> np.ndarray:
    """Zero-mean AR(1) noise with stationary std ``sigma``."""
    if not 0 <= correlation < 1:
        raise WorkloadError("correlation must be in [0, 1)")
    innovations = rng.normal(0.0, sigma * np.sqrt(1 - correlation**2), slots)
    noise = np.empty(slots)
    acc = 0.0
    for i in range(slots):
        acc = correlation * acc + innovations[i]
        noise[i] = acc
    return noise


@dataclasses.dataclass
class ColoPowerTrace:
    """Aggregate power of a non-participating tenant group.

    Produces a smooth, diurnal, mean-reverting power series bounded by
    the group's subscription: exactly what the shared-PDU headroom (spot
    capacity) is carved out of.

    Args:
        subscription_w: The group's guaranteed capacity (upper bound).
        mean_fraction: Long-run mean draw as a fraction of subscription.
        diurnal_amplitude: Peak-to-mean swing as a fraction of
            subscription.
        noise_sigma: Stationary std of the AR(1) noise, as a fraction of
            subscription.  Keep small (~0.01) to respect the paper's
            slow PDU-level variation.
        correlation: AR(1) coefficient; high values (0.97+) give the
            paper's "changes marginally within a few minutes" behaviour.
        slots_per_day: Slot count per diurnal cycle (1440 at 1-min slots).
        phase: Diurnal phase offset in [0, 1), to decorrelate groups.
    """

    subscription_w: float
    mean_fraction: float = 0.68
    diurnal_amplitude: float = 0.10
    noise_sigma: float = 0.012
    correlation: float = 0.97
    slots_per_day: float = float(_SLOTS_PER_DAY_1MIN)
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.subscription_w <= 0:
            raise WorkloadError("subscription_w must be positive")
        if not 0 < self.mean_fraction <= 1:
            raise WorkloadError("mean_fraction must be in (0, 1]")
        if self.diurnal_amplitude < 0 or self.noise_sigma < 0:
            raise WorkloadError("amplitudes must be >= 0")

    def generate(self, slots: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``slots`` power samples in watts."""
        if slots <= 0:
            raise WorkloadError("slots must be positive")
        pattern = _diurnal(slots, self.slots_per_day, self.phase)
        base = self.mean_fraction + self.diurnal_amplitude * (pattern - 0.5) * 2
        noise = _ar1(rng, slots, self.noise_sigma, self.correlation)
        fraction = np.clip(base + noise, 0.05, 1.0)
        return fraction * self.subscription_w


@dataclasses.dataclass
class VolatilePowerTrace:
    """A deliberately volatile power trace (paper Section V-A).

    The 20-minute testbed experiment uses "a synthetic trace with a
    higher volatility for the non-participating tenants' power" so that
    spot-capacity availability visibly varies across the 10 slots.
    This generator random-walks between power plateaus.
    """

    subscription_w: float
    low_fraction: float = 0.45
    high_fraction: float = 0.95
    switch_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.subscription_w <= 0:
            raise WorkloadError("subscription_w must be positive")
        if not 0 <= self.low_fraction < self.high_fraction <= 1:
            raise WorkloadError("need 0 <= low < high <= 1")
        if not 0 < self.switch_probability <= 1:
            raise WorkloadError("switch_probability must be in (0, 1]")

    def generate(self, slots: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``slots`` plateau-hopping power samples in watts."""
        if slots <= 0:
            raise WorkloadError("slots must be positive")
        levels = np.empty(slots)
        current = rng.uniform(self.low_fraction, self.high_fraction)
        for i in range(slots):
            if rng.random() < self.switch_probability:
                current = rng.uniform(self.low_fraction, self.high_fraction)
            levels[i] = current
        return levels * self.subscription_w


@dataclasses.dataclass
class GoogleStyleArrivalTrace:
    """Request-arrival rate for an interactive (sprinting) service.

    Diurnal baseline plus occasional traffic surges.  Calibrated so that
    the rate exceeds ``peak_threshold_fraction`` of the service's full
    capacity for roughly ``peak_duty_cycle`` of slots — the paper's
    "sprinting tenants need spot capacity during high traffic periods
    for around 15% of the times".

    Args:
        max_rate_rps: The service's full-power service rate (requests/s).
        base_fraction: Mean load as a fraction of ``max_rate_rps``.
        diurnal_amplitude: Diurnal swing as a fraction of the max rate.
        surge_probability: Per-slot probability a surge begins.
        surge_magnitude: Surge height as a fraction of the max rate.
        surge_duration_slots: Mean surge length (geometric).
        noise_sigma: Multiplicative lognormal-ish noise scale.
        slots_per_day: Slots per diurnal cycle.
        phase: Diurnal phase offset.
    """

    max_rate_rps: float
    base_fraction: float = 0.55
    diurnal_amplitude: float = 0.20
    surge_probability: float = 0.02
    surge_magnitude: float = 0.35
    surge_duration_slots: int = 8
    noise_sigma: float = 0.03
    slots_per_day: float = float(_SLOTS_PER_DAY_1MIN)
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.max_rate_rps <= 0:
            raise WorkloadError("max_rate_rps must be positive")
        if not 0 < self.base_fraction < 1:
            raise WorkloadError("base_fraction must be in (0, 1)")
        if self.surge_duration_slots < 1:
            raise WorkloadError("surge_duration_slots must be >= 1")

    def generate(self, slots: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``slots`` arrival-rate samples in requests/second."""
        if slots <= 0:
            raise WorkloadError("slots must be positive")
        pattern = _diurnal(slots, self.slots_per_day, self.phase)
        load = self.base_fraction + self.diurnal_amplitude * (pattern - 0.5) * 2
        surge = np.zeros(slots)
        i = 0
        while i < slots:
            if rng.random() < self.surge_probability:
                duration = 1 + rng.geometric(1.0 / self.surge_duration_slots)
                height = self.surge_magnitude * rng.uniform(0.6, 1.2)
                surge[i : i + duration] = height
                i += duration
            else:
                i += 1
        # Real traffic surges ramp over a few minutes rather than in one
        # slot; the smoothing also keeps aggregate PDU power variation
        # slow (Fig. 7a), which the operator's predictor relies on.
        surge = _smooth(surge, 3)
        noise = 1.0 + rng.normal(0.0, self.noise_sigma, slots)
        rate = np.clip((load + surge) * noise, 0.02, 0.98)
        return rate * self.max_rate_rps


@dataclasses.dataclass
class BatchBacklogTrace:
    """Work arrivals for a batch (opportunistic) tenant.

    Work arrives in bursts (data drops, nightly pipelines); the tenant's
    guaranteed capacity sustains the *mean* arrival rate, so bursts build
    a backlog the tenant would like spot capacity to drain.  Calibrated
    so a backlog worth sprinting for exists in roughly
    ``burst_duty_cycle`` of slots (paper: ~30%).

    Args:
        mean_rate_units_per_s: Long-run work arrival rate (workload units
            per second, e.g. MB/s).
        burst_duty_cycle: Fraction of slots inside an arrival burst.
        burst_multiplier: Arrival-rate multiple during bursts.
        burst_duration_slots: Mean burst length (geometric).
        noise_sigma: Multiplicative noise on arrivals.
    """

    mean_rate_units_per_s: float
    burst_duty_cycle: float = 0.30
    burst_multiplier: float = 2.5
    burst_duration_slots: int = 15
    noise_sigma: float = 0.10

    def __post_init__(self) -> None:
        if self.mean_rate_units_per_s <= 0:
            raise WorkloadError("mean_rate_units_per_s must be positive")
        if not 0 < self.burst_duty_cycle < 1:
            raise WorkloadError("burst_duty_cycle must be in (0, 1)")
        if self.burst_multiplier <= 1:
            raise WorkloadError("burst_multiplier must exceed 1")
        if self.burst_duration_slots < 1:
            raise WorkloadError("burst_duration_slots must be >= 1")

    def generate(self, slots: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``slots`` work-arrival samples (units per second).

        The mean of the returned series is ``mean_rate_units_per_s`` in
        expectation: bursts raise the rate, off-burst slots are scaled
        down to compensate.
        """
        if slots <= 0:
            raise WorkloadError("slots must be positive")
        in_burst = np.zeros(slots, dtype=bool)
        # Begin bursts at a rate that yields the requested duty cycle.
        start_prob = self.burst_duty_cycle / self.burst_duration_slots
        i = 0
        while i < slots:
            if rng.random() < start_prob:
                duration = 1 + rng.geometric(1.0 / self.burst_duration_slots)
                in_burst[i : i + duration] = True
                i += duration
            else:
                i += 1
        duty = in_burst.mean() if slots > 0 else 0.0
        # Off-burst scale keeping the long-run mean at mean_rate.
        off_scale = max(
            0.05, (1.0 - duty * self.burst_multiplier) / max(1.0 - duty, 1e-9)
        )
        rate = np.where(in_burst, self.burst_multiplier, off_scale)
        # Burst edges ramp over a few slots (data drops stream in rather
        # than appearing instantaneously).
        rate = _smooth(rate, 3)
        noise = np.clip(1.0 + rng.normal(0.0, self.noise_sigma, slots), 0.2, 2.0)
        return rate * noise * self.mean_rate_units_per_s
