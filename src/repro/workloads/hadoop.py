"""Hadoop batch workloads: WordCount and TeraSort stand-ins.

The paper's opportunistic Count/Sort tenants run Hadoop 2.6.4 (one
master, seven data nodes) processing a 15 GB WordCount input and a 5 GB
TeraSort, measuring **data processing rate (MB/s)**.  Both are
delay-tolerant backlog drainers: guaranteed capacity sustains a minimum
rate, and spot capacity buys speed-up during data bursts (~30% of slots,
Section V-B).

WordCount is CPU-light per byte (higher MB/s per watt); TeraSort's
shuffle/merge phases make it heavier per byte and slightly sub-linear in
power.
"""

from __future__ import annotations

from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel
from repro.workloads.base import BatchWorkload
from repro.workloads.traces import BatchBacklogTrace

__all__ = [
    "WORDCOUNT_DEFAULTS",
    "TERASORT_DEFAULTS",
    "make_wordcount_workload",
    "make_terasort_workload",
]

#: WordCount: streaming map-heavy scan, ~linear power scaling.
WORDCOUNT_DEFAULTS = {
    "rate_max_mb_per_watt": 0.5,  # MB/s at full power, per dynamic watt
    "scaling_exponent": 1.0,
    "mean_load_fraction": 0.38,  # mean arrivals / full-power rate
    "burst_duty_cycle": 0.33,
    "burst_multiplier": 2.0,
}

#: TeraSort: shuffle-bound, mildly sub-linear power scaling.
TERASORT_DEFAULTS = {
    "rate_max_mb_per_watt": 0.35,
    "scaling_exponent": 0.9,
    "mean_load_fraction": 0.38,
    "burst_duty_cycle": 0.33,
    "burst_multiplier": 2.0,
}


def _make_hadoop_workload(
    name: str,
    power_model: ServerPowerModel,
    defaults: dict,
    sprint_backlog_s: float,
) -> BatchWorkload:
    rate_max = defaults["rate_max_mb_per_watt"] * power_model.dynamic_range_w
    model = ThroughputModel(
        power_model=power_model,
        rate_max=rate_max,
        scaling_exponent=defaults["scaling_exponent"],
    )
    trace = BatchBacklogTrace(
        mean_rate_units_per_s=defaults["mean_load_fraction"] * rate_max,
        burst_duty_cycle=defaults["burst_duty_cycle"],
        burst_multiplier=defaults["burst_multiplier"],
    )
    return BatchWorkload(
        name=name,
        throughput_model=model,
        arrival_trace=trace,
        sprint_backlog_s=sprint_backlog_s,
    )


def make_wordcount_workload(
    name: str,
    power_model: ServerPowerModel,
    sprint_backlog_s: float = 30.0,
) -> BatchWorkload:
    """Build a WordCount workload (MB/s metric) on a rack.

    Args:
        name: Instance label (e.g. ``"Count-1"``).
        power_model: The rack's power model (sets the MB/s scale).
        sprint_backlog_s: Backlog depth (seconds of full-rate work)
            beyond which the tenant wants spot capacity.
    """
    return _make_hadoop_workload(name, power_model, WORDCOUNT_DEFAULTS, sprint_backlog_s)


def make_terasort_workload(
    name: str,
    power_model: ServerPowerModel,
    sprint_backlog_s: float = 30.0,
) -> BatchWorkload:
    """Build a TeraSort workload (MB/s metric) on a rack."""
    return _make_hadoop_workload(name, power_model, TERASORT_DEFAULTS, sprint_backlog_s)
