"""Power capping: keeping a rack's draw within its enforced budget.

Tenants with insufficient capacity reservation cap power (e.g. by
scaling down CPU via RAPL/DVFS) whenever demand would exceed their
budget; otherwise the operator applies warnings and involuntary cuts
(paper Sections I, III-C).  :func:`apply_cap` is the single place where
"desired draw" meets "enforced budget", used by every tenant model.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CapacityError

__all__ = ["CapDecision", "apply_cap"]


@dataclasses.dataclass(frozen=True)
class CapDecision:
    """Result of enforcing a budget on a desired power draw.

    Attributes:
        actual_w: Power the rack will draw this slot.
        capped: Whether the budget forced a reduction.
        shortfall_w: Watts of desired draw that could not be served.
    """

    actual_w: float
    capped: bool
    shortfall_w: float


def apply_cap(desired_w: float, budget_w: float, idle_w: float = 0.0) -> CapDecision:
    """Clamp a desired draw to the enforced budget.

    Args:
        desired_w: Power the workload wants this slot.
        budget_w: Enforced budget (guaranteed + granted spot capacity).
        idle_w: Floor draw of powered-on servers.  A budget below idle is
            physically unsatisfiable by DVFS alone; the rack then draws
            ``idle_w`` (the emergency log will flag the excursion).

    Raises:
        CapacityError: On negative inputs (programming error).
    """
    if desired_w < 0 or budget_w < 0 or idle_w < 0:
        raise CapacityError(
            f"negative power value: desired={desired_w}, budget={budget_w}, "
            f"idle={idle_w}"
        )
    floor = min(idle_w, desired_w)
    actual = max(floor, min(desired_w, budget_w))
    capped = desired_w > budget_w
    return CapDecision(
        actual_w=actual,
        capped=capped,
        shortfall_w=max(0.0, desired_w - actual),
    )
