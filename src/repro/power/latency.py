"""Tail-latency model for interactive (sprinting) workloads.

The paper's Fig. 8 profiles p99/p90 latency against the rack power
budget at several workload intensities: latency falls steeply as power
(hence CPU frequency, hence service rate) rises, and rises with load.
We reproduce that shape with a DVFS frequency model plus an M/M/1-style
tail approximation:

* frequency from power:
  ``f = ((p - idle) / (peak - idle)) ** (1 / alpha)``, the inverse of the
  classic ``p ~ idle + span * f**alpha`` DVFS power law;
* service rate ``mu(p) = mu_max * f``;
* tail latency ``d = d_min / f + (tail_const / mu) * rho / (1 - rho)``
  with ``rho = lambda / mu``, saturating at ``saturated_latency_ms`` when
  the arrival rate meets or exceeds the service rate.

This is a *behavioural* substitute for the paper's CloudSuite testbed
runs: monotone decreasing and convex in power, monotone increasing in
load, with a saturation wall — the properties the market mechanism and
the SLO-driven bidding actually exercise.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel

__all__ = ["LatencyModel"]


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Tail latency as a function of power budget and request rate.

    Attributes:
        power_model: The rack's utilization/power model (supplies the
            idle/peak range the frequency model maps over).
        mu_max_rps: Service rate at full power, requests/second.
        d_min_ms: Deterministic floor of the tail latency at full
            frequency and vanishing load.
        alpha: DVFS power-law exponent (2-3 for real silicon).
        tail_const_ms_rps: Queueing-term scale: ``tail_const / mu`` is in
            milliseconds when ``mu`` is in requests/second.  Calibrates
            the percentile being modelled (p99 vs p90).
        min_frequency: DVFS floor as a fraction of full frequency.
        saturated_latency_ms: Latency reported when the rack is
            overloaded (``rho >= 1``); also the model's upper clip.
    """

    power_model: ServerPowerModel
    mu_max_rps: float
    d_min_ms: float = 20.0
    alpha: float = 2.0
    tail_const_ms_rps: float = 4000.0
    min_frequency: float = 0.2
    saturated_latency_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.mu_max_rps <= 0:
            raise ConfigurationError("mu_max_rps must be positive")
        if self.d_min_ms <= 0:
            raise ConfigurationError("d_min_ms must be positive")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if not 0 < self.min_frequency <= 1:
            raise ConfigurationError("min_frequency must be in (0, 1]")
        if self.saturated_latency_ms <= self.d_min_ms:
            raise ConfigurationError(
                "saturated_latency_ms must exceed d_min_ms"
            )

    def frequency(self, power_w: float) -> float:
        """Effective CPU frequency fraction sustainable at a power budget."""
        span = self.power_model.dynamic_range_w
        usable = min(max(power_w - self.power_model.idle_w, 0.0), span)
        f = (usable / span) ** (1.0 / self.alpha)
        return max(self.min_frequency, min(1.0, f))

    def service_rate_rps(self, power_w: float) -> float:
        """Sustainable request service rate at a power budget."""
        return self.mu_max_rps * self.frequency(power_w)

    def latency_ms(self, power_w: float, arrival_rps: float) -> float:
        """Tail latency at a power budget under a given arrival rate.

        Args:
            power_w: Enforced power budget for the rack.
            arrival_rps: Offered request rate; must be >= 0.
        """
        if arrival_rps < 0:
            raise ConfigurationError(f"arrival_rps must be >= 0, got {arrival_rps}")
        f = self.frequency(power_w)
        mu = self.mu_max_rps * f
        if arrival_rps >= mu:
            return self.saturated_latency_ms
        rho = arrival_rps / mu
        latency = self.d_min_ms / f + (self.tail_const_ms_rps / mu) * rho / (1 - rho)
        return min(latency, self.saturated_latency_ms)

    def power_for_latency(
        self, target_ms: float, arrival_rps: float, tolerance_w: float = 0.01
    ) -> float:
        """Smallest power budget meeting a latency target (bisection).

        Returns the rack's peak power when the target is unreachable even
        at full power (the caller then knows spot capacity alone cannot
        restore the SLO).
        """
        if target_ms <= 0:
            raise ConfigurationError("target_ms must be positive")
        peak = self.power_model.peak_w
        if self.latency_ms(peak, arrival_rps) > target_ms:
            return peak
        lo, hi = self.power_model.idle_w, peak
        while hi - lo > tolerance_w:
            mid = (lo + hi) / 2
            if self.latency_ms(mid, arrival_rps) <= target_ms:
                hi = mid
            else:
                lo = mid
        return hi
