"""Throughput model for batch (opportunistic) workloads.

Hadoop WordCount/TeraSort and graph analytics in the paper's Fig. 8 show
processing rate growing near-linearly with the power budget above idle —
more watts buy proportionally more active cores/frequency for
embarrassingly parallel work.  :class:`ThroughputModel` captures exactly
that affine relation, with an efficiency exponent available for
sub-linear scaling (stragglers, shuffle overheads).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel

__all__ = ["ThroughputModel"]


@dataclasses.dataclass(frozen=True)
class ThroughputModel:
    """Processing rate as a function of the rack power budget.

    Attributes:
        power_model: The rack's utilization/power model.
        rate_max: Processing rate at full power, in workload units per
            second (MB/s for WordCount/TeraSort, nodes/s for graph
            analytics — the paper's metrics).
        scaling_exponent: ``rate = rate_max * x ** scaling_exponent``
            where ``x`` is the fraction of the dynamic power range in
            use.  1.0 (default) is the paper's near-linear regime; values
            below 1 model diminishing returns.
    """

    power_model: ServerPowerModel
    rate_max: float
    scaling_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_max <= 0:
            raise ConfigurationError("rate_max must be positive")
        if not 0 < self.scaling_exponent <= 1.5:
            raise ConfigurationError("scaling_exponent must be in (0, 1.5]")

    def rate_at(self, power_w: float) -> float:
        """Processing rate sustainable within a power budget."""
        span = self.power_model.dynamic_range_w
        usable = min(max(power_w - self.power_model.idle_w, 0.0), span)
        return self.rate_max * (usable / span) ** self.scaling_exponent

    def completion_time_s(self, work_units: float, power_w: float) -> float:
        """Time to finish ``work_units`` at a fixed power budget.

        Returns ``inf`` when the budget is at or below idle (no useful
        work can be done).
        """
        if work_units < 0:
            raise ConfigurationError(f"work_units must be >= 0, got {work_units}")
        if work_units == 0:
            return 0.0
        rate = self.rate_at(power_w)
        if rate <= 0:
            return float("inf")
        return work_units / rate

    def power_for_rate(self, target_rate: float) -> float:
        """Smallest power budget sustaining a target processing rate.

        Targets above ``rate_max`` return the rack's peak power.
        """
        if target_rate < 0:
            raise ConfigurationError(f"target_rate must be >= 0, got {target_rate}")
        if target_rate >= self.rate_max:
            return self.power_model.peak_w
        x = (target_rate / self.rate_max) ** (1.0 / self.scaling_exponent)
        return self.power_model.idle_w + x * self.power_model.dynamic_range_w
