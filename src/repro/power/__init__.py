"""Server power and power-performance substrate: affine power model,
capping, tail-latency and throughput models, and Fig. 8-style profiling.
"""

from repro.power.capping import CapDecision, apply_cap
from repro.power.latency import LatencyModel
from repro.power.profiles import PowerPerformanceProfile, ProfileCurve
from repro.power.server import ServerPowerModel
from repro.power.throughput import ThroughputModel

__all__ = [
    "CapDecision",
    "LatencyModel",
    "PowerPerformanceProfile",
    "ProfileCurve",
    "ServerPowerModel",
    "ThroughputModel",
    "apply_cap",
]
