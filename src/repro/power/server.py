"""Rack-level server power model.

A rack's draw is modelled with the standard affine utilization model
(Fan et al., "Power provisioning for a warehouse-sized computer" — the
paper's reference [3]): ``p(u) = idle + (peak - idle) * u`` for
utilization ``u in [0, 1]``.  In the paper's scaled-down testbed each
"rack" is one server; the same model scales to real racks by scaling
``idle``/``peak``.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

__all__ = ["ServerPowerModel"]


@dataclasses.dataclass(frozen=True)
class ServerPowerModel:
    """Affine utilization-to-power model for one rack.

    Attributes:
        idle_w: Draw at zero utilization (servers on, no work).
        peak_w: Draw at full utilization.
    """

    idle_w: float
    peak_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ConfigurationError(f"idle_w must be >= 0, got {self.idle_w}")
        if self.peak_w <= self.idle_w:
            raise ConfigurationError(
                f"peak_w ({self.peak_w}) must exceed idle_w ({self.idle_w})"
            )

    @property
    def dynamic_range_w(self) -> float:
        """Peak minus idle: the power that tracks utilization."""
        return self.peak_w - self.idle_w

    def power_at(self, utilization: float) -> float:
        """Draw at a utilization level (clamped into [0, 1])."""
        u = min(max(utilization, 0.0), 1.0)
        return self.idle_w + self.dynamic_range_w * u

    def utilization_at(self, power_w: float) -> float:
        """Utilization sustainable within a power level (inverse model).

        Power at or below idle yields 0; above peak yields 1.
        """
        if power_w <= self.idle_w:
            return 0.0
        return min(1.0, (power_w - self.idle_w) / self.dynamic_range_w)

    def scaled(self, factor: float) -> "ServerPowerModel":
        """A copy with both idle and peak scaled (tenant-diversity jitter)."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return ServerPowerModel(self.idle_w * factor, self.peak_w * factor)
