"""Power-performance profiling (the tenant-side groundwork of Fig. 8).

"Tenants routinely evaluate server power under different workloads prior
to service deployment" (paper Section III-B3).  A
:class:`PowerPerformanceProfile` is that evaluation in code: it samples a
latency or throughput model over a power grid at fixed workload
intensities, yielding exactly the curves of the paper's Fig. 8, which
tenants then feed into value curves and bids.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.power.latency import LatencyModel
from repro.power.throughput import ThroughputModel

__all__ = ["ProfileCurve", "PowerPerformanceProfile"]


@dataclasses.dataclass(frozen=True)
class ProfileCurve:
    """One profiled curve: performance versus power at a fixed intensity.

    Attributes:
        intensity: The workload intensity the curve was measured at
            (requests/s for latency profiles; backlog level for
            throughput profiles — throughput curves do not actually
            depend on it but carry it for labelling).
        power_w: Sampled power budgets, ascending.
        performance: Performance at each budget — milliseconds of tail
            latency for latency profiles (lower is better), units/s for
            throughput profiles (higher is better).
        metric: ``"latency_ms"`` or ``"throughput"``.
    """

    intensity: float
    power_w: np.ndarray
    performance: np.ndarray
    metric: str

    def performance_at(self, power_w: float) -> float:
        """Interpolated performance at an arbitrary budget."""
        return float(np.interp(power_w, self.power_w, self.performance))


class PowerPerformanceProfile:
    """A family of profiled curves for one rack's workload."""

    def __init__(self, curves: Sequence[ProfileCurve]) -> None:
        if not curves:
            raise ConfigurationError("profile needs at least one curve")
        metrics = {c.metric for c in curves}
        if len(metrics) != 1:
            raise ConfigurationError(f"mixed metrics in one profile: {metrics}")
        self.curves = tuple(sorted(curves, key=lambda c: c.intensity))
        self.metric = curves[0].metric

    @classmethod
    def profile_latency(
        cls,
        model: LatencyModel,
        arrival_rates_rps: Sequence[float],
        samples: int = 50,
    ) -> "PowerPerformanceProfile":
        """Profile tail latency over the rack's power range (Fig. 8 left).

        Args:
            model: The rack's latency model.
            arrival_rates_rps: Workload intensities to profile at.
            samples: Power-grid resolution per curve.
        """
        grid = np.linspace(
            model.power_model.idle_w, model.power_model.peak_w, samples
        )
        curves = [
            ProfileCurve(
                intensity=rate,
                power_w=grid,
                performance=np.array(
                    [model.latency_ms(float(p), rate) for p in grid]
                ),
                metric="latency_ms",
            )
            for rate in arrival_rates_rps
        ]
        return cls(curves)

    @classmethod
    def profile_throughput(
        cls,
        model: ThroughputModel,
        intensities: Sequence[float] = (1.0,),
        samples: int = 50,
    ) -> "PowerPerformanceProfile":
        """Profile processing rate over the power range (Fig. 8 right)."""
        grid = np.linspace(
            model.power_model.idle_w, model.power_model.peak_w, samples
        )
        curves = [
            ProfileCurve(
                intensity=level,
                power_w=grid,
                performance=np.array([model.rate_at(float(p)) for p in grid]),
                metric="throughput",
            )
            for level in intensities
        ]
        return cls(curves)

    def curve_for(self, intensity: float) -> ProfileCurve:
        """The profiled curve closest to a requested intensity."""
        return min(self.curves, key=lambda c: abs(c.intensity - intensity))

    def is_monotone(self) -> bool:
        """Check the expected monotonicity in power for every curve.

        Latency must be non-increasing and throughput non-decreasing in
        the power budget — the shape property Fig. 8 exhibits and the
        bidding guideline relies on.
        """
        for curve in self.curves:
            diffs = np.diff(curve.performance)
            if self.metric == "latency_ms":
                if np.any(diffs > 1e-9):
                    return False
            else:
                if np.any(diffs < -1e-9):
                    return False
        return True
