"""Unit conventions and conversion helpers.

The SpotDC paper mixes several unit systems: power in watts and kilowatts,
prices in US$/kW/month (guaranteed capacity), US$/kWh (energy), and
$/kW/slot (spot capacity).  To keep the library honest about units, this
module centralises every conversion and documents the canonical internal
units:

* **power** — watts (``float``)
* **energy** — watt-hours
* **money** — US dollars
* **time** — seconds for durations; integer slot indices for simulation time
* **price** — dollars per kilowatt per *hour* for spot-capacity prices
  (``$/kW/h``), which makes prices directly comparable with the amortised
  guaranteed-capacity rate used by the paper's bidding guideline.

Keeping power in watts and prices per kilowatt mirrors the paper's own
presentation (rack budgets in watts, market price in cents/kW).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "WATTS_PER_KILOWATT",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "HOURS_PER_MONTH",
    "MONTHS_PER_YEAR",
    "watts_to_kilowatts",
    "kilowatts_to_watts",
    "per_kw_month_to_per_kw_hour",
    "per_kw_hour_to_per_kw_month",
    "dollars_per_watt_to_per_kw",
    "slot_hours",
    "spot_payment",
    "energy_cost",
    "amortized_capex_per_hour",
]

WATTS_PER_KILOWATT = 1000.0
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
#: Colocation billing convention: a month is 730 hours (8760 h / 12).
HOURS_PER_MONTH = 730.0
MONTHS_PER_YEAR = 12.0


def watts_to_kilowatts(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / WATTS_PER_KILOWATT


def kilowatts_to_watts(kilowatts: float) -> float:
    """Convert kilowatts to watts."""
    return kilowatts * WATTS_PER_KILOWATT


def per_kw_month_to_per_kw_hour(rate_per_kw_month: float) -> float:
    """Convert a $/kW/month rate (colo price sheets) to $/kW/h.

    The paper quotes guaranteed capacity at US$120-250/kW/month; the
    amortised hourly rate (~$0.16-0.34/kW/h) anchors tenants' maximum
    spot bids (Section III-B3).
    """
    return rate_per_kw_month / HOURS_PER_MONTH


def per_kw_hour_to_per_kw_month(rate_per_kw_hour: float) -> float:
    """Convert a $/kW/h rate back to the $/kW/month convention."""
    return rate_per_kw_hour * HOURS_PER_MONTH


def dollars_per_watt_to_per_kw(rate_per_watt: float) -> float:
    """Convert a $/W capital cost (e.g. US$0.4/W rack capacity) to $/kW."""
    return rate_per_watt * WATTS_PER_KILOWATT


def slot_hours(slot_seconds: float) -> float:
    """Duration of one market time slot, in hours.

    Slots are 1-5 minutes in the paper; 120 s in the testbed experiment.
    """
    return slot_seconds / SECONDS_PER_HOUR


def spot_payment(watts: float, price_per_kw_hour: float, slot_seconds: float) -> float:
    """Dollar payment for holding ``watts`` of spot capacity for one slot.

    ``price_per_kw_hour`` is the market clearing price in $/kW/h.
    """
    return watts_to_kilowatts(watts) * price_per_kw_hour * slot_hours(slot_seconds)


def energy_cost(watts: float, tariff_per_kwh: float, duration_seconds: float) -> float:
    """Metered-energy charge for drawing ``watts`` over ``duration_seconds``."""
    kwh = watts_to_kilowatts(watts) * (duration_seconds / SECONDS_PER_HOUR)
    return kwh * tariff_per_kwh


def amortized_capex_per_hour(
    capex_dollars: float, amortization_years: float = 15.0
) -> float:
    """Hourly amortisation of a capital expense over ``amortization_years``.

    The paper amortises the US$0.4/W rack-capacity over-provisioning cost
    over 15 years when computing the operator's net profit (Section V-B1).
    """
    if amortization_years <= 0:
        raise ConfigurationError("amortization_years must be positive")
    return capex_dollars / (amortization_years * MONTHS_PER_YEAR * HOURS_PER_MONTH)
