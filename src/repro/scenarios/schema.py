"""The component-wise scenario-spec schema and its validator.

The schema is *data*: :data:`SCHEMA` describes every component of a
declarative scenario spec (topology, time, demand, supply, prediction,
events, faults, telemetry, recovery) in a small JSON-Schema dialect, and
:func:`validate_spec` walks an instance against it, raising
:class:`~repro.errors.ConfigurationError` whose message begins with the
JSON-pointer path of the first offending field (e.g.
``/demand/tenants/3/subscription_w``).  The same document ships as
package data (``repro/scenarios/schema.json``) so external tooling can
consume it; ``tests/test_scenarios_spec.py`` pins the two in sync.

Supported schema keywords (the subset the spec needs):

``type`` (a name or list of names; ``number`` excludes booleans and
non-finite floats), ``enum``, ``const``, ``minimum`` /
``exclusiveMinimum`` / ``maximum``, ``minLength``, ``properties`` /
``required`` / ``additionalProperties`` (boolean), ``items`` /
``minItems``.  Cross-field rules that JSON Schema cannot express
(unique names, PDU references, per-workload required fields) live in
:mod:`repro.scenarios.spec`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.forecast.signals import SIGNAL_NAMES

__all__ = ["SCHEMA", "SPEC_VERSION", "validate_instance", "validate_spec"]

#: Version stamp required in every scenario spec.
SPEC_VERSION = 1

#: Workload classes a flat (single-rack) tenant can declare.
CLASSED_WORKLOADS = ("search", "web", "wordcount", "terasort", "graph")

#: Every workload key the demand component accepts.
ALL_WORKLOADS = CLASSED_WORKLOADS + ("other", "tiered")

#: Named bidding strategies the demand component can select.
STRATEGY_NAMES = (
    "linear_elastic",
    "simple_needed_power",
    "step",
    "full_curve",
    "custom",
)

_POSITIVE_NUMBER = {"type": "number", "exclusiveMinimum": 0}
_FRACTION = {"type": "number", "minimum": 0, "maximum": 1}

_TIER = {
    "type": "object",
    "properties": {
        "subscription_w": _POSITIVE_NUMBER,
        "pdu": {"type": "string", "minLength": 1},
    },
    "required": ["subscription_w", "pdu"],
    "additionalProperties": False,
}

#: One tenant record.  ``name`` and ``workload`` are always required;
#: which of the remaining keys are required (and which are forbidden)
#: depends on the workload and is enforced by the normaliser.
_TENANT = {
    "type": "object",
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "workload": {"type": "string", "enum": list(ALL_WORKLOADS)},
        "subscription_w": _POSITIVE_NUMBER,
        "pdu": {"type": "string", "minLength": 1},
        "volatile": {"type": "boolean"},
        "tiers": {"type": "array", "items": _TIER, "minItems": 2},
        "q_low": {"type": ["number", "null"], "exclusiveMinimum": 0},
        "q_high": {"type": ["number", "null"], "exclusiveMinimum": 0},
        "slo_ms": _POSITIVE_NUMBER,
    },
    "required": ["name", "workload"],
    "additionalProperties": False,
}

#: Declarative fault component: either a named class
#: (``{"class": "chaos", "intensity": 0.25}``) or an explicit
#: :class:`~repro.resilience.FaultProfile` field bundle under
#: ``"profile"`` — never both (normaliser rule).
_FAULTS = {
    "type": ["object", "null"],
    "properties": {
        "class": {"type": "string", "minLength": 1},
        "intensity": _FRACTION,
        "seed": {"type": ["integer", "null"]},
        "crash_at_slot": {"type": ["integer", "null"], "minimum": 0},
        "profile": {
            "type": "object",
            "properties": {
                "name": {"type": "string"},
                "bid_loss": _FRACTION,
                "grant_loss": _FRACTION,
                "burst_enter": _FRACTION,
                "burst_exit": _FRACTION,
                "burst_loss": _FRACTION,
                "delay_probability": _FRACTION,
                "delay_slots": {"type": "integer", "minimum": 1},
                "meter_stuck": _FRACTION,
                "meter_dropout": _FRACTION,
                "meter_noise_sigma": {"type": "number", "minimum": 0},
                "meter_episode_slots": {"type": "integer", "minimum": 1},
                "derating_rate": _FRACTION,
                "derating_fraction": _FRACTION,
                "derating_slots": {"type": "integer", "minimum": 1},
                "duplicate_probability": _FRACTION,
                "crash_at_slot": {"type": ["integer", "null"], "minimum": 0},
                "seed": {"type": ["integer", "null"]},
            },
            "required": [],
            "additionalProperties": False,
        },
    },
    "required": [],
    "additionalProperties": False,
}

#: Declarative prediction component (repro.forecast): which signal
#: forecasts spot capacity, how conservative it is, and the overcommit
#: quantile the release policy sells at.  Always normalised to a fully
#: defaulted block so sweep axes like ``prediction.risk_quantile`` are
#: one-line dotted paths.
_PREDICTION = {
    "type": ["object", "null"],
    "properties": {
        "signal": {"type": "string", "enum": list(SIGNAL_NAMES)},
        "under_prediction_factor": {
            "type": "number",
            "exclusiveMinimum": 0,
            "maximum": 1,
        },
        "safety_margin_fraction": _FRACTION,
        "window": {"type": ["integer", "null"], "minimum": 1},
        "risk_quantile": {
            "type": ["number", "null"],
            "exclusiveMinimum": 0,
            "maximum": 1,
        },
    },
    "required": [],
    "additionalProperties": False,
}

#: Grid-event kinds the events component can schedule.
EVENT_KINDS = ("edr_shock", "price_spike", "derating_cascade")

#: One scheduled grid event.  ``kind`` and ``slot`` are always
#: required; which of the remaining keys are allowed depends on the
#: kind and is enforced by the normaliser.
_EVENT = {
    "type": "object",
    "properties": {
        "kind": {"type": "string", "enum": list(EVENT_KINDS)},
        "slot": {"type": "integer", "minimum": 0},
        "duration_slots": {"type": "integer", "minimum": 1},
        "fraction": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
        "unit_id": {"type": ["string", "null"], "minLength": 1},
        "reserve_price": {"type": ["number", "null"], "minimum": 0},
        "stages": {"type": "integer", "minimum": 1},
        "stage_slots": {"type": "integer", "minimum": 1},
        "fraction_per_stage": {
            "type": "number",
            "exclusiveMinimum": 0,
            "maximum": 1,
        },
    },
    "required": ["kind", "slot"],
    "additionalProperties": False,
}

#: Declarative grid-event component (repro.events): a manual schedule
#: of typed events, an optional seeded EDR arrival process, and an
#: optional wholesale price trace for reserve-price coupling.  Always
#: normalised to a fully defaulted block so sweep axes like
#: ``events.rate`` are one-line dotted paths.
_EVENTS = {
    "type": ["object", "null"],
    "properties": {
        "schedule": {"type": "array", "items": _EVENT},
        "seed": {"type": ["integer", "null"]},
        "rate": {"type": "number", "minimum": 0, "maximum": 1},
        "shock_fraction": {
            "type": "number",
            "exclusiveMinimum": 0,
            "maximum": 1,
        },
        "shock_duration_slots": {"type": "integer", "minimum": 1},
        "compliance_slots": {"type": "integer", "minimum": 1},
        "price_coupling": {"type": "number", "minimum": 0},
        "reserve_uplift": {"type": "number", "minimum": 0},
        "wholesale_trace": {
            "type": ["array", "null"],
            "items": {"type": "number", "minimum": 0},
        },
    },
    "required": [],
    "additionalProperties": False,
}

_TELEMETRY = {
    "type": ["object", "null"],
    "properties": {
        "enabled": {"type": "boolean"},
        "out_dir": {"type": ["string", "null"]},
        "label": {"type": "string"},
        "export_trace": {"type": "boolean"},
        "export_metrics": {"type": "boolean"},
        "export_summary": {"type": "boolean"},
        "include_timings": {"type": "boolean"},
    },
    "required": [],
    "additionalProperties": False,
}

#: The scenario-spec schema, component by component.
SCHEMA = {
    "type": "object",
    "properties": {
        "spec_version": {"const": SPEC_VERSION},
        "name": {"type": "string", "minLength": 1},
        "seed": {"type": "integer"},
        "topology": {
            "type": "object",
            "properties": {
                "pdus": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "properties": {
                            "id": {"type": "string", "minLength": 1},
                            "oversubscription": {"type": "number", "minimum": 1},
                        },
                        "required": ["id"],
                        "additionalProperties": False,
                    },
                },
                "rack_headroom_fraction": _POSITIVE_NUMBER,
            },
            "required": ["pdus"],
            "additionalProperties": False,
        },
        "time": {
            "type": "object",
            "properties": {"slot_seconds": _POSITIVE_NUMBER},
            "required": [],
            "additionalProperties": False,
        },
        "demand": {
            "type": "object",
            "properties": {
                "strategy": {"type": "string", "enum": list(STRATEGY_NAMES)},
                "tenants": {"type": "array", "items": _TENANT, "minItems": 1},
            },
            "required": ["tenants"],
            "additionalProperties": False,
        },
        "supply": {
            "type": "object",
            "properties": {
                "ups_oversubscription": {"type": "number", "minimum": 1},
                "infrastructure_cost_per_watt": {"type": "number", "minimum": 0},
            },
            "required": [],
            "additionalProperties": False,
        },
        "prediction": _PREDICTION,
        "events": _EVENTS,
        "faults": _FAULTS,
        "telemetry": _TELEMETRY,
        "recovery": {
            "type": "object",
            "properties": {
                "clearing_deadline_s": {
                    "type": ["number", "boolean", "null"],
                    "exclusiveMinimum": 0,
                },
            },
            "required": [],
            "additionalProperties": False,
        },
        "market": {
            "type": ["object", "null"],
            "properties": {
                "shards": {"type": "integer", "minimum": 1},
            },
            "required": [],
            "additionalProperties": False,
        },
    },
    "required": ["spec_version", "topology", "demand"],
    "additionalProperties": False,
}


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, Sequence) and not isinstance(v, (str, bytes)),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (
        isinstance(v, (int, float))
        and not isinstance(v, bool)
        and math.isfinite(v)
    ),
}


def _fail(pointer: str, message: str) -> None:
    raise ConfigurationError(f"{pointer or '/'}: {message}")


def _type_ok(value, type_names) -> bool:
    names = [type_names] if isinstance(type_names, str) else list(type_names)
    return any(_TYPE_CHECKS[name](value) for name in names)


def validate_instance(value, schema: Mapping, pointer: str = "") -> None:
    """Validate one value against a schema node.

    Raises :class:`ConfigurationError` with a JSON-pointer-prefixed
    message on the first violation; returns ``None`` on success.
    """
    if "const" in schema:
        if value != schema["const"]:
            _fail(pointer, f"must be {schema['const']!r}, got {value!r}")
        return
    type_names = schema.get("type")
    if type_names is not None and not _type_ok(value, type_names):
        names = [type_names] if isinstance(type_names, str) else list(type_names)
        kind = " or ".join(names)
        _fail(pointer, f"must be of type {kind}, got {value!r}")
    if value is None:
        return  # a permitted null ends the check — bounds don't apply
    if "enum" in schema and isinstance(value, str):
        if value not in schema["enum"]:
            choices = ", ".join(map(repr, schema["enum"]))
            _fail(pointer, f"must be one of {choices}, got {value!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            _fail(pointer, f"must be >= {schema['minimum']}, got {value!r}")
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            _fail(pointer, f"must be > {schema['exclusiveMinimum']}, got {value!r}")
        if "maximum" in schema and value > schema["maximum"]:
            _fail(pointer, f"must be <= {schema['maximum']}, got {value!r}")
    if isinstance(value, str) and "minLength" in schema:
        if len(value) < schema["minLength"]:
            _fail(pointer, "must be a non-empty string")
    if isinstance(value, Mapping) and "properties" in schema:
        for key in schema.get("required", ()):
            if key not in value:
                _fail(pointer, f"missing required field {key!r}")
        properties = schema["properties"]
        for key, item in value.items():
            if not isinstance(key, str):
                _fail(pointer, f"non-string key {key!r}")
            if key in properties:
                validate_instance(item, properties[key], f"{pointer}/{key}")
            elif not schema.get("additionalProperties", True):
                known = ", ".join(sorted(properties))
                _fail(f"{pointer}/{key}", f"unknown field (known: {known})")
    if _TYPE_CHECKS["array"](value) and not isinstance(value, Mapping):
        if "minItems" in schema and len(value) < schema["minItems"]:
            _fail(
                pointer,
                f"needs at least {schema['minItems']} item(s), got {len(value)}",
            )
        if "items" in schema:
            for i, item in enumerate(value):
                validate_instance(item, schema["items"], f"{pointer}/{i}")


def validate_spec(spec) -> None:
    """Validate one scenario spec against :data:`SCHEMA` (shape only).

    Use :func:`repro.scenarios.spec.normalize_spec` for the full check —
    it applies defaults first and then enforces the cross-field rules
    the schema cannot express.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"scenario spec must be a mapping, got {type(spec).__name__}"
        )
    validate_instance(spec, SCHEMA, "")
