"""Scenario-spec normalisation, parsing, and the canonical dumper.

A *spec* is plain data (the shape :mod:`repro.scenarios.schema`
validates).  This module turns arbitrary valid input — hand-written
JSON/YAML, preset emitters, ``ScenarioBuilder.to_spec()`` — into the
*normal form*: every optional field filled with its default, every
number a float (never an int standing in for one), components in a
fixed shape.  The normal form is what round-trips byte-identically:

    ``dump_spec(normalize_spec(x)) == dump_spec(normalize_spec(parse_spec_text(dump_spec(normalize_spec(x)))))``

and more simply ``normalize_spec(dump → parse) == normalize_spec``
(pinned by a Hypothesis property in ``tests/test_scenarios_spec.py``).

YAML support is optional: :func:`parse_spec_text` uses :mod:`yaml` when
installed and raises :class:`ConfigurationError` otherwise, so the core
library never hard-depends on it.
"""

from __future__ import annotations

import copy
import json
import pathlib

from repro.config import (
    DEFAULT_SEED,
    DEFAULT_SLOT_SECONDS,
    RACK_HEADROOM_FRACTION,
)
from repro.errors import ConfigurationError
from repro.resilience.profile import FAULT_CLASSES
from repro.scenarios.schema import (
    CLASSED_WORKLOADS,
    SCHEMA,
    SPEC_VERSION,
    validate_spec,
)

__all__ = [
    "normalize_spec",
    "normalize_events",
    "dump_spec",
    "parse_spec_text",
    "parse_component_file",
    "load_spec_file",
    "spec_pdu_ids",
]

#: Field defaults of :class:`repro.resilience.FaultProfile`, mirrored so
#: an explicit-profile faults component normalises to a complete record.
#: ``tests/test_scenarios_spec.py`` pins this mirror against the
#: dataclass defaults.
_FAULT_PROFILE_DEFAULTS = {
    "name": "custom",
    "bid_loss": 0.0,
    "grant_loss": 0.0,
    "burst_enter": 0.0,
    "burst_exit": 0.3,
    "burst_loss": 0.9,
    "delay_probability": 0.0,
    "delay_slots": 3,
    "meter_stuck": 0.0,
    "meter_dropout": 0.0,
    "meter_noise_sigma": 0.0,
    "meter_episode_slots": 5,
    "derating_rate": 0.0,
    "derating_fraction": 0.2,
    "derating_slots": 12,
    "duplicate_probability": 0.0,
    "crash_at_slot": None,
    "seed": None,
}

#: Field defaults of :class:`repro.forecast.PredictionProfile`, mirrored
#: so the prediction component always normalises to a complete block —
#: a missing/null component fills in entirely, keeping sweep axes like
#: ``prediction.risk_quantile`` valid dotted paths on every spec.
#: ``tests/test_scenarios_spec.py`` pins this mirror against the
#: dataclass defaults.
_PREDICTION_DEFAULTS = {
    "signal": "current_draw",
    "under_prediction_factor": 1.0,
    "safety_margin_fraction": 0.025,
    "window": None,
    "risk_quantile": None,
}

#: Scalar-field defaults of :class:`repro.events.EventProfile`, mirrored
#: so the events component always normalises to a complete block — a
#: missing/null component fills in entirely, keeping sweep axes like
#: ``events.rate`` valid dotted paths on every spec.
#: ``tests/test_scenarios_spec.py`` pins this mirror against the
#: dataclass defaults.
_EVENTS_DEFAULTS = {
    "schedule": [],
    "seed": None,
    "rate": 0.0,
    "shock_fraction": 0.3,
    "shock_duration_slots": 12,
    "compliance_slots": 3,
    "price_coupling": 1.0,
    "reserve_uplift": 0.0,
    "wholesale_trace": None,
}

#: Per-kind defaults for scheduled grid events, mirroring the
#: :mod:`repro.events.types` dataclass defaults (also pinned by
#: ``tests/test_scenarios_spec.py``).  A kind's entry lists every field
#: it accepts beyond ``kind``/``slot``.
_EVENT_KIND_DEFAULTS = {
    "edr_shock": {"duration_slots": 12, "fraction": 0.3, "unit_id": None},
    "price_spike": {"duration_slots": 12, "reserve_price": None},
    "derating_cascade": {
        "stages": 3,
        "stage_slots": 5,
        "fraction_per_stage": 0.1,
        "unit_id": None,
    },
}

_TELEMETRY_DEFAULTS = {
    "enabled": True,
    "out_dir": None,
    "label": "",
    "export_trace": True,
    "export_metrics": True,
    "export_summary": True,
    "include_timings": False,
}


def _fail(pointer: str, message: str) -> None:
    raise ConfigurationError(f"{pointer or '/'}: {message}")


def _coerce_numbers(value, schema):
    """Return ``value`` with every schema-``number`` int made a float.

    JSON and YAML render ``120`` and ``120.0`` differently; normalising
    to float keeps the canonical dump byte-stable regardless of how the
    author spelled a number.  Fields typed ``integer`` (seeds, slot
    counts) stay ints.
    """
    types = schema.get("type")
    names = [types] if isinstance(types, str) else list(types or ())
    if (
        isinstance(value, int)
        and not isinstance(value, bool)
        and "number" in names
        and "integer" not in names
    ):
        return float(value)
    if isinstance(value, dict) and "properties" in schema:
        return {
            key: _coerce_numbers(item, schema["properties"][key])
            if key in schema["properties"]
            else item
            for key, item in value.items()
        }
    if isinstance(value, list) and "items" in schema:
        return [_coerce_numbers(item, schema["items"]) for item in value]
    return value


def _normalize_tenant(tenant: dict, index: int, pdu_ids: set) -> dict:
    """Apply per-workload defaults and cross-field rules to one tenant."""
    pointer = f"/demand/tenants/{index}"
    workload = tenant["workload"]
    out = {"name": tenant["name"], "workload": workload}

    def require(field):
        if tenant.get(field) is None:
            _fail(pointer, f"workload {workload!r} requires field {field!r}")
        return tenant[field]

    def forbid(*fields):
        for field in fields:
            if field in tenant:
                _fail(
                    f"{pointer}/{field}",
                    f"not a valid field for workload {workload!r}",
                )

    if workload == "tiered":
        forbid("subscription_w", "pdu", "volatile")
        out["tiers"] = require("tiers")
        for i, tier in enumerate(out["tiers"]):
            if tier["pdu"] not in pdu_ids:
                _fail(
                    f"{pointer}/tiers/{i}/pdu",
                    f"references undeclared PDU {tier['pdu']!r}",
                )
        q_low, q_high = tenant.get("q_low"), tenant.get("q_high")
        if q_low is not None and q_high is not None and q_high <= q_low:
            _fail(f"{pointer}/q_high", "must be > q_low")
        out["q_low"] = q_low
        out["q_high"] = q_high
        out["slo_ms"] = tenant.get("slo_ms", 100.0)
        return out

    forbid("tiers", "q_low", "q_high", "slo_ms")
    out["subscription_w"] = require("subscription_w")
    out["pdu"] = require("pdu")
    if out["pdu"] not in pdu_ids:
        _fail(f"{pointer}/pdu", f"references undeclared PDU {out['pdu']!r}")
    if workload == "other":
        out["volatile"] = tenant.get("volatile", False)
    else:
        assert workload in CLASSED_WORKLOADS
        forbid("volatile")
    return out


def _normalize_faults(faults) -> "dict | None":
    """Normalise the faults component (named or explicit-profile form)."""
    if faults is None:
        return None
    if "profile" in faults and "class" in faults:
        _fail("/faults", "give either 'class' or 'profile', not both")
    if "profile" in faults:
        for key in ("intensity", "seed", "crash_at_slot"):
            if key in faults:
                _fail(
                    f"/faults/{key}",
                    "not a valid field alongside an explicit 'profile'",
                )
        profile = dict(_FAULT_PROFILE_DEFAULTS)
        profile.update(faults["profile"])
        return {"profile": profile}
    if "class" not in faults:
        _fail("/faults", "missing required field 'class' (or 'profile')")
    name = faults["class"]
    if name not in FAULT_CLASSES:
        choices = ", ".join(map(repr, FAULT_CLASSES))
        _fail("/faults/class", f"must be one of {choices}, got {name!r}")
    return {
        "class": name,
        "intensity": faults.get("intensity", 0.1),
        "seed": faults.get("seed"),
        "crash_at_slot": faults.get("crash_at_slot"),
    }


def normalize_events(events) -> dict:
    """Normalise the events component to its fully-defaulted block.

    ``None`` yields the all-defaults block (no events, no coupling) so
    every spec carries the same shape and sweep axes stay valid.
    Schedule entries get their kind's defaults filled in, and fields
    belonging to a different kind are rejected with a pointered error.
    """
    out = dict(_EVENTS_DEFAULTS)
    out.update(events or {})
    if out["rate"] >= 1:
        # The schema's inclusive bound admits 1.0; the profile does not.
        _fail("/events/rate", "must be < 1")
    if out["shock_fraction"] >= 1:
        _fail("/events/shock_fraction", "must be < 1")
    schedule = []
    for i, entry in enumerate(out["schedule"] or []):
        pointer = f"/events/schedule/{i}"
        kind = entry["kind"]
        defaults = _EVENT_KIND_DEFAULTS[kind]
        for field in entry:
            if field not in ("kind", "slot") and field not in defaults:
                _fail(
                    f"{pointer}/{field}",
                    f"not a valid field for event kind {kind!r}",
                )
        normal = {"kind": kind, "slot": entry["slot"]}
        for field, default in defaults.items():
            normal[field] = entry.get(field, default)
        if kind == "edr_shock" and normal["fraction"] >= 1:
            _fail(f"{pointer}/fraction", "must be < 1")
        if kind == "derating_cascade":
            terminal = normal["stages"] * normal["fraction_per_stage"]
            if terminal >= 1:
                _fail(
                    f"{pointer}/fraction_per_stage",
                    "terminal cut stages * fraction_per_stage must be < 1, "
                    f"got {terminal}",
                )
        schedule.append(normal)
    out["schedule"] = schedule
    trace = out["wholesale_trace"]
    if trace is not None:
        if not trace:
            _fail("/events/wholesale_trace", "must not be empty")
        out["wholesale_trace"] = [float(v) for v in trace]
    return out


def normalize_spec(raw) -> dict:
    """Validate a spec and return its fully-defaulted normal form.

    Raises :class:`ConfigurationError` (message prefixed with the JSON
    pointer of the offending field) on any shape or cross-field
    violation.  The result is a fresh dict, safe to mutate.
    """
    validate_spec(raw)
    spec = _coerce_numbers(copy.deepcopy(dict(raw)), SCHEMA)

    topology = spec["topology"]
    pdus = []
    pdu_ids: set = set()
    for i, pdu in enumerate(topology["pdus"]):
        if pdu["id"] in pdu_ids:
            _fail(f"/topology/pdus/{i}/id", f"duplicate PDU id {pdu['id']!r}")
        pdu_ids.add(pdu["id"])
        pdus.append(
            {"id": pdu["id"], "oversubscription": pdu.get("oversubscription", 1.05)}
        )

    tenants = []
    names: set = set()
    for i, tenant in enumerate(spec["demand"]["tenants"]):
        if tenant["name"] in names:
            _fail(
                f"/demand/tenants/{i}/name",
                f"duplicate tenant name {tenant['name']!r}",
            )
        names.add(tenant["name"])
        tenants.append(_normalize_tenant(tenant, i, pdu_ids))

    supply = spec.get("supply", {})
    recovery = spec.get("recovery", {})
    deadline = recovery.get("clearing_deadline_s")
    if deadline is False:
        _fail("/recovery/clearing_deadline_s", "must be null, true, or > 0")

    telemetry = spec.get("telemetry")
    if telemetry is not None:
        merged = dict(_TELEMETRY_DEFAULTS)
        merged.update(telemetry)
        telemetry = merged

    prediction = dict(_PREDICTION_DEFAULTS)
    prediction.update(spec.get("prediction") or {})
    if prediction["safety_margin_fraction"] >= 1:
        # The schema's inclusive bound admits 1.0; the profile does not.
        _fail("/prediction/safety_margin_fraction", "must be < 1")

    return {
        "spec_version": SPEC_VERSION,
        "name": spec.get("name", "scenario"),
        "seed": spec.get("seed", DEFAULT_SEED),
        "topology": {
            "pdus": pdus,
            "rack_headroom_fraction": topology.get(
                "rack_headroom_fraction", RACK_HEADROOM_FRACTION
            ),
        },
        "time": {
            "slot_seconds": spec.get("time", {}).get(
                "slot_seconds", DEFAULT_SLOT_SECONDS
            ),
        },
        "demand": {
            "strategy": spec["demand"].get("strategy", "linear_elastic"),
            "tenants": tenants,
        },
        "supply": {
            "ups_oversubscription": supply.get("ups_oversubscription", 1.05),
            "infrastructure_cost_per_watt": supply.get(
                "infrastructure_cost_per_watt", 25.0
            ),
        },
        "prediction": prediction,
        "events": normalize_events(spec.get("events")),
        "faults": _normalize_faults(spec.get("faults")),
        "telemetry": telemetry,
        "recovery": {"clearing_deadline_s": deadline},
        "market": {"shards": (spec.get("market") or {}).get("shards", 1)},
    }


def spec_pdu_ids(spec: dict) -> list:
    """Declared PDU ids of a normalised spec, in declaration order."""
    return [pdu["id"] for pdu in spec["topology"]["pdus"]]


def dump_spec(spec) -> str:
    """Serialise a spec to its canonical byte-deterministic JSON form.

    The spec is normalised first, so any two specs describing the same
    scenario dump to identical bytes: sorted keys, two-space indent,
    trailing newline, every number a float where the schema says number.
    """
    normal = normalize_spec(spec)
    return json.dumps(normal, indent=2, sort_keys=True) + "\n"


def parse_spec_text(text: str, source: str = "<spec>") -> dict:
    """Parse JSON (or YAML, when available) spec text to its normal form.

    JSON is tried first — every canonical dump is JSON — and YAML is the
    fallback for hand-written files.  YAML needs the optional
    :mod:`yaml` dependency; without it, non-JSON input is rejected with
    a clear error rather than a guess.
    """
    return normalize_spec(_parse_mapping(text, source))


def _parse_mapping(text: str, source: str) -> dict:
    """Parse JSON-or-YAML text to a raw (unvalidated) mapping."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError:
        try:
            import yaml
        except ImportError:
            raise ConfigurationError(
                f"{source}: not valid JSON and PyYAML is not installed "
                "(install pyyaml to use YAML specs)"
            ) from None
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigurationError(f"{source}: invalid YAML: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigurationError(
            f"{source}: scenario spec must be a mapping, "
            f"got {type(raw).__name__}"
        )
    return raw


def parse_component_file(path) -> dict:
    """Read one standalone component file to a raw mapping.

    Unlike :func:`load_spec_file` the content is *not* normalised as a
    full scenario spec — the caller validates it against the relevant
    component sub-schema (e.g. the ``--event-schedule`` CLI flag
    validates against the events sub-schema).
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read component file {path}: {exc}"
        ) from exc
    return _parse_mapping(text, source=str(path))


def load_spec_file(path) -> dict:
    """Read and normalise one spec file (``.json``, ``.yaml``/``.yml``)."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path}: {exc}") from exc
    return parse_spec_text(text, source=str(path))
