"""Declarative scenario platform: schema, specs, presets, loader.

A scenario spec is plain data (JSON/YAML) split into components —
topology, time, demand, supply, prediction, events, faults, telemetry,
recovery — validated
against :data:`~repro.scenarios.schema.SCHEMA` with JSON-pointer error
paths, assembled into a live :class:`~repro.sim.scenario.Scenario` by
:func:`build_scenario`, and dumped back byte-deterministically by
:func:`dump_scenario`.  See ``docs/scenarios.md``.
"""

from repro.scenarios.loader import (
    build_scenario,
    dump_scenario,
    event_profile_from_file,
    events_from_spec,
    fault_profile_from_spec,
    load_scenario,
    prediction_profile_from_spec,
    strategy_factory_from_spec,
    telemetry_from_spec,
)
from repro.scenarios.presets import PRESETS, preset_spec, scaled_spec, testbed_spec
from repro.scenarios.schema import SCHEMA, SPEC_VERSION, validate_spec
from repro.scenarios.spec import (
    dump_spec,
    load_spec_file,
    normalize_spec,
    parse_spec_text,
)

__all__ = [
    "SCHEMA",
    "SPEC_VERSION",
    "PRESETS",
    "build_scenario",
    "dump_scenario",
    "dump_spec",
    "event_profile_from_file",
    "events_from_spec",
    "fault_profile_from_spec",
    "load_scenario",
    "load_spec_file",
    "normalize_spec",
    "parse_spec_text",
    "prediction_profile_from_spec",
    "preset_spec",
    "scaled_spec",
    "strategy_factory_from_spec",
    "telemetry_from_spec",
    "testbed_spec",
    "validate_spec",
]
