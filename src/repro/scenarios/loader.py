"""Assemble a :class:`~repro.sim.scenario.Scenario` from a spec.

The loader is deliberately thin: it normalises the spec
(:func:`repro.scenarios.spec.normalize_spec`), replays it onto a
:class:`~repro.sim.builder.ScenarioBuilder` — the single assembly
engine — and runs the builder's internal assembly.  Because the builder
spawns one RNG stream per tenant in declaration order, a spec-loaded
scenario is *byte-identical* (JSONL trace and all) to the same facility
composed through the builder API or the preset functions with the same
seed; ``tests/test_scenarios_equivalence.py`` machine-checks this.

Programmatic objects that plain data cannot carry — a custom
``strategy_factory`` callable, a :class:`FaultProfile` with an explicit
derating schedule, a live :class:`TelemetryConfig` — are passed as
keyword overrides and win over the corresponding spec component.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.events.profile import EventProfile
from repro.forecast.profile import PredictionProfile
from repro.resilience.profile import FaultProfile
from repro.scenarios.spec import dump_spec, load_spec_file, normalize_spec
from repro.telemetry.config import TelemetryConfig

__all__ = [
    "build_scenario",
    "load_scenario",
    "dump_scenario",
    "event_profile_from_file",
    "events_from_spec",
    "fault_profile_from_spec",
    "prediction_profile_from_spec",
    "telemetry_from_spec",
    "strategy_factory_from_spec",
]


def _linear_elastic(kind):
    from repro.tenants.bidding import LinearElasticStrategy

    return LinearElasticStrategy()


def _simple_needed_power(kind):
    from repro.tenants.bidding import SimpleNeededPowerStrategy

    return SimpleNeededPowerStrategy()


def _step(kind):
    from repro.tenants.bidding import StepStrategy

    return StepStrategy()


def _full_curve(kind):
    from repro.tenants.bidding import FullCurveStrategy

    return FullCurveStrategy()


_STRATEGY_FACTORIES = {
    "linear_elastic": _linear_elastic,
    "simple_needed_power": _simple_needed_power,
    "step": _step,
    "full_curve": _full_curve,
}


def strategy_factory_from_spec(name: str):
    """Resolve a spec strategy name to a ``kind -> BiddingStrategy``."""
    if name == "custom":
        raise ConfigurationError(
            "/demand/strategy: 'custom' requires an explicit "
            "strategy_factory override (callables cannot live in a spec)"
        )
    try:
        return _STRATEGY_FACTORIES[name]
    except KeyError:
        choices = ", ".join(sorted(_STRATEGY_FACTORIES))
        raise ConfigurationError(
            f"/demand/strategy: unknown strategy {name!r} (known: {choices})"
        ) from None


def fault_profile_from_spec(faults) -> "FaultProfile | None":
    """Build the :class:`FaultProfile` a normalised faults component names."""
    if faults is None:
        return None
    if "profile" in faults:
        return FaultProfile(**faults["profile"])
    profile = FaultProfile.named(faults["class"], faults["intensity"])
    if faults["seed"] is not None or faults["crash_at_slot"] is not None:
        profile = dataclasses.replace(
            profile,
            seed=faults["seed"] if faults["seed"] is not None else profile.seed,
            crash_at_slot=(
                faults["crash_at_slot"]
                if faults["crash_at_slot"] is not None
                else profile.crash_at_slot
            ),
        )
    return profile


def prediction_profile_from_spec(prediction) -> "PredictionProfile | None":
    """Build the :class:`PredictionProfile` a normalised component names.

    The all-defaults block (what a spec without a ``prediction``
    component normalises to) maps to ``None``: the engine's own default
    path is the paper's rule, and keeping the scenario field ``None``
    there preserves byte-identical default traces and the legacy
    ``spot_predictor`` override semantics.
    """
    if prediction is None:
        return None
    profile = PredictionProfile(**prediction)
    if profile == PredictionProfile():
        return None
    return profile


def events_from_spec(events) -> "EventProfile | None":
    """Build the :class:`EventProfile` a normalised component names.

    The all-defaults block (what a spec without an ``events`` component
    normalises to) maps to ``None``: the engine then builds no shock
    absorber at all, preserving byte-identical default traces.
    """
    if events is None:
        return None
    profile = EventProfile.from_spec(events)
    if profile == EventProfile():
        return None
    return profile


def event_profile_from_file(path) -> "EventProfile | None":
    """Load a standalone ``events`` component file (JSON or YAML).

    The file holds just the events block — the same shape as a spec's
    ``events`` component — validated against the scenario schema's
    events sub-schema.  Used by the ``--event-schedule`` CLI flag.
    """
    from repro.scenarios.schema import SCHEMA, validate_instance
    from repro.scenarios.spec import normalize_events, parse_component_file

    raw = parse_component_file(path)
    validate_instance(raw, SCHEMA["properties"]["events"], "/events")
    return events_from_spec(normalize_events(raw))


def telemetry_from_spec(telemetry) -> "TelemetryConfig | None":
    """Build the :class:`TelemetryConfig` a normalised component names."""
    if telemetry is None:
        return None
    return TelemetryConfig(**telemetry)


def build_scenario(
    spec,
    *,
    strategy_factory=None,
    fault_profile=None,
    telemetry=None,
):
    """Assemble a :class:`Scenario` from a (not necessarily normalised) spec.

    Args:
        spec: Scenario spec mapping; validated and normalised first.
        strategy_factory: Override the spec's declared bidding strategy
            with a ``kind -> BiddingStrategy`` callable (required when
            the spec says ``"custom"``).
        fault_profile: Override the spec's faults component with a live
            :class:`FaultProfile` (e.g. one carrying an explicit
            derating schedule).
        telemetry: Override the spec's telemetry component with a live
            :class:`TelemetryConfig`.

    Returns:
        The assembled scenario, carrying its normal-form spec on
        ``scenario.spec`` so :func:`dump_scenario` round-trips.
    """
    from repro.sim.builder import ScenarioBuilder

    normal = normalize_spec(spec)
    factory = strategy_factory or strategy_factory_from_spec(
        normal["demand"]["strategy"]
    )
    builder = ScenarioBuilder(
        seed=normal["seed"],
        slot_seconds=normal["time"]["slot_seconds"],
        ups_oversubscription=normal["supply"]["ups_oversubscription"],
        rack_headroom_fraction=normal["topology"]["rack_headroom_fraction"],
        infrastructure_cost_per_watt=normal["supply"][
            "infrastructure_cost_per_watt"
        ],
        strategy_factory=factory,
    )
    for pdu in normal["topology"]["pdus"]:
        builder.add_pdu(pdu["id"], oversubscription=pdu["oversubscription"])
    for tenant in normal["demand"]["tenants"]:
        workload = tenant["workload"]
        if workload == "other":
            builder.add_other_group(
                tenant["name"],
                tenant["subscription_w"],
                tenant["pdu"],
                volatile=tenant["volatile"],
            )
        elif workload == "tiered":
            builder.add_tiered_tenant(
                tenant["name"],
                [(tier["subscription_w"], tier["pdu"]) for tier in tenant["tiers"]],
                q_low=tenant["q_low"],
                q_high=tenant["q_high"],
                slo_ms=tenant["slo_ms"],
            )
        else:
            builder._add_classed_tenant(
                tenant["name"], workload, tenant["subscription_w"], tenant["pdu"]
            )
    if fault_profile is not None:
        builder.with_fault_profile(fault_profile)
    else:
        builder.with_fault_profile(fault_profile_from_spec(normal["faults"]))
    if telemetry is not None:
        builder.with_telemetry(telemetry)
    else:
        builder.with_telemetry(telemetry_from_spec(normal["telemetry"]))
    builder.with_prediction(prediction_profile_from_spec(normal["prediction"]))
    builder.with_events(events_from_spec(normal["events"]))
    deadline = normal["recovery"]["clearing_deadline_s"]
    if deadline is not None:
        builder.with_clearing_deadline(deadline)
    builder.with_market_shards(normal["market"]["shards"])

    scenario = builder._assemble_scenario()
    scenario.spec = normal
    return scenario


def load_scenario(path, **overrides):
    """Load a spec file and assemble its scenario.

    Keyword overrides are those of :func:`build_scenario`.
    """
    return build_scenario(load_spec_file(path), **overrides)


def dump_scenario(scenario) -> str:
    """Canonical spec text of a spec-built scenario.

    ``spec → Scenario → spec`` round-trips byte-identically:
    ``dump_scenario(build_scenario(parse_spec_text(text)))`` equals the
    canonical dump of ``text``.  Scenarios assembled before the spec
    layer existed (``scenario.spec is None``) cannot be dumped.
    """
    spec = getattr(scenario, "spec", None)
    if spec is None:
        raise ConfigurationError(
            "scenario carries no spec (assembled outside the spec layer); "
            "build it via repro.scenarios or ScenarioBuilder to dump it"
        )
    return dump_spec(spec)
