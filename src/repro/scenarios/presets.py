"""Spec emitters for the paper's canonical facilities.

These produce *data* — normal-form scenario specs — for the two
facilities the paper evaluates: the Table I testbed and Fig. 18's
scaled-up variant.  :func:`repro.sim.scenario.testbed_scenario` and
:func:`~repro.sim.scenario.scaled_scenario` are now thin wrappers that
feed these specs to :func:`repro.scenarios.loader.build_scenario`.

The scaled preset *materialises* the ±jitter tenant-diversity draws into
explicit per-tenant subscriptions (same RNG, same draw order as the
pre-spec implementation), so the emitted spec is self-contained: loading
it from disk reproduces the exact facility, byte for byte.
"""

from __future__ import annotations

from repro.config import (
    DEFAULT_SEED,
    DEFAULT_SLOT_SECONDS,
    RACK_HEADROOM_FRACTION,
    make_rng,
)
from repro.errors import ConfigurationError

__all__ = ["PRESETS", "preset_spec", "testbed_spec", "scaled_spec"]


def _tenant_record(name, workload, subscription_w, pdu_id, volatile=False):
    record = {
        "name": name,
        "workload": workload,
        "subscription_w": float(subscription_w),
        "pdu": pdu_id,
    }
    if workload == "other":
        record["volatile"] = volatile
    return record


def testbed_spec(
    seed: int = DEFAULT_SEED,
    slot_seconds: float = DEFAULT_SLOT_SECONDS,
    pdu_oversubscription: float = 1.05,
    ups_oversubscription: float = 1.05,
    rack_headroom_fraction: float = RACK_HEADROOM_FRACTION,
    volatile_other: bool = False,
    infrastructure_cost_per_watt: float = 25.0,
    strategy: str = "linear_elastic",
) -> dict:
    """The paper's Table I testbed as a normal-form spec.

    Two PDUs (750 W / 760 W leased at 5% oversubscription → ≈715 W /
    ≈724 W physical), ten tenants, UPS ≈1370 W.  Parameters mirror
    :func:`repro.sim.scenario.testbed_scenario`.
    """
    from repro.scenarios.spec import normalize_spec
    from repro.sim.scenario import TABLE1_SPECS

    pdu_indices = sorted({spec.pdu for spec in TABLE1_SPECS})
    return normalize_spec(
        {
            "spec_version": 1,
            "name": "testbed",
            "seed": seed,
            "topology": {
                "pdus": [
                    {"id": f"pdu:{i}", "oversubscription": pdu_oversubscription}
                    for i in pdu_indices
                ],
                "rack_headroom_fraction": rack_headroom_fraction,
            },
            "time": {"slot_seconds": slot_seconds},
            "demand": {
                "strategy": strategy,
                "tenants": [
                    _tenant_record(
                        spec.name,
                        spec.workload,
                        spec.subscription_w,
                        f"pdu:{spec.pdu}",
                        volatile=volatile_other,
                    )
                    for spec in TABLE1_SPECS
                ],
            },
            "supply": {
                "ups_oversubscription": ups_oversubscription,
                "infrastructure_cost_per_watt": infrastructure_cost_per_watt,
            },
        }
    )


def scaled_spec(
    groups: int,
    seed: int = DEFAULT_SEED,
    slot_seconds: float = DEFAULT_SLOT_SECONDS,
    jitter: float = 0.2,
    pdu_oversubscription: float = 1.05,
    ups_oversubscription: float = 1.05,
    rack_headroom_fraction: float = RACK_HEADROOM_FRACTION,
    infrastructure_cost_per_watt: float = 25.0,
    strategy: str = "linear_elastic",
) -> dict:
    """Fig. 18's scaled facility as a normal-form spec.

    Replicates the Table I composition ``groups`` times (first group
    exact, later groups' subscriptions jittered by up to ±``jitter``),
    with the jitter draws materialised into explicit subscriptions so
    the spec stands alone.  The draw order matches the pre-spec
    ``scaled_scenario`` exactly: one uniform per tenant for every group
    after the first, consumed even when ``jitter`` is zero.
    """
    from repro.scenarios.spec import normalize_spec
    from repro.sim.scenario import TABLE1_SPECS

    if groups < 1:
        raise ConfigurationError("groups must be >= 1")
    rng = make_rng(seed)
    tenants = []
    pdu_indices: list[int] = []
    for g in range(groups):
        group_jitter = 0.0 if g == 0 else jitter
        for spec in TABLE1_SPECS:
            pdu_index = 2 * g + spec.pdu
            if pdu_index not in pdu_indices:
                pdu_indices.append(pdu_index)
            scale = 1.0 if g == 0 else float(
                1.0 + rng.uniform(-group_jitter, group_jitter)
            )
            tenants.append(
                _tenant_record(
                    f"{spec.name}@{g}" if g > 0 else spec.name,
                    spec.workload,
                    spec.subscription_w * scale,
                    f"pdu:{pdu_index}",
                )
            )
    return normalize_spec(
        {
            "spec_version": 1,
            "name": f"scaled-{groups}x",
            "seed": seed,
            "topology": {
                "pdus": [
                    {"id": f"pdu:{i}", "oversubscription": pdu_oversubscription}
                    for i in pdu_indices
                ],
                "rack_headroom_fraction": rack_headroom_fraction,
            },
            "time": {"slot_seconds": slot_seconds},
            "demand": {"strategy": strategy, "tenants": tenants},
            "supply": {
                "ups_oversubscription": ups_oversubscription,
                "infrastructure_cost_per_watt": infrastructure_cost_per_watt,
            },
        }
    )


#: Named presets for the CLI (``spotdc scenario show --preset ...``) and
#: sweep-config ``base: {preset: ...}`` references.
PRESETS = {
    "testbed": testbed_spec,
    "scaled": scaled_spec,
}


def preset_spec(name: str, **kwargs) -> dict:
    """Emit one named preset spec (``testbed`` or ``scaled``)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        choices = ", ".join(sorted(PRESETS))
        raise ConfigurationError(
            f"unknown scenario preset {name!r} (known: {choices})"
        ) from None
    return factory(**kwargs)
