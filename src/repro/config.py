"""Global constants and randomness policy for the SpotDC reproduction.

Every number here is traceable either to the paper's text or to a stated
calibration choice; nothing else in the library hard-codes a paper
constant.  Stochastic components never construct their own random state —
they accept a :class:`numpy.random.Generator` so that scenarios are fully
reproducible from a single seed (see :func:`make_rng`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_SLOT_SECONDS",
    "DEFAULT_SEED",
    "GUARANTEED_RATE_PER_KW_MONTH",
    "GUARANTEED_RATE_RANGE_PER_KW_MONTH",
    "ENERGY_TARIFF_PER_KWH",
    "RACK_CAPEX_PER_WATT",
    "RACK_CAPEX_AMORTIZATION_YEARS",
    "UPS_CAPEX_PER_WATT_RANGE",
    "DEFAULT_OVERSUBSCRIPTION",
    "RACK_HEADROOM_FRACTION",
    "SLO_LATENCY_MS",
    "DEFAULT_PRICE_STEP",
    "MAX_PRICE_PER_KW_HOUR",
    "MarketParameters",
    "make_rng",
    "spawn_rngs",
]

#: Market time-slot length, seconds.  The paper uses 1-5 minute slots; the
#: testbed experiment (Fig. 10) divides 20 minutes into 10 slots of 120 s.
DEFAULT_SLOT_SECONDS = 120.0

#: Library-wide default seed used by scenario builders when none is given.
DEFAULT_SEED = 20180224  # HPCA 2018 conference dates.

#: Guaranteed-capacity subscription rate, $/kW/month (paper: US$120-250).
GUARANTEED_RATE_PER_KW_MONTH = 150.0
GUARANTEED_RATE_RANGE_PER_KW_MONTH = (120.0, 250.0)

#: Metered energy tariff, $/kWh (typical US commercial rate; tenants pay
#: for metered energy regardless of spot participation).
ENERGY_TARIFF_PER_KWH = 0.10

#: Rack-level capacity over-provisioning capital cost, $/W (paper: US$0.4/W
#: amortised over 15 years, Section V-B1; rack PDUs cost US¢20-50/W).
RACK_CAPEX_PER_WATT = 0.4
RACK_CAPEX_AMORTIZATION_YEARS = 15.0

#: Shared UPS/PDU infrastructure capital cost, $/W (paper: US$10-25/W).
UPS_CAPEX_PER_WATT_RANGE = (10.0, 25.0)

#: Facility oversubscription used throughout the evaluation: leased
#: capacity is 105% of physical capacity at both PDU and UPS levels
#: (Section IV-A: 750 W leased = 715 W physical x 105%).
DEFAULT_OVERSUBSCRIPTION = 1.05

#: Rack-level physical headroom above the guaranteed subscription that the
#: intelligent rack PDU can unlock for spot capacity.  The paper notes a
#: 20% rack-level capacity margin is already standard (Section II-A); we
#: default to 50% so the rack level is "not a bottleneck" (Section II-C).
RACK_HEADROOM_FRACTION = 0.5

#: Service-level objective for sprinting tenants (paper: 100 ms for all).
SLO_LATENCY_MS = 100.0

#: Default market price-scan step, $/kW/h.  The paper reports clearing
#: times for steps of 0.1 and 1 cent/kW (Fig. 7b).
DEFAULT_PRICE_STEP = 0.001

#: Upper bound of the clearing-price scan, $/kW/h.  Set above any sane bid
#: (~2x the amortised rate of the most expensive guaranteed capacity).
MAX_PRICE_PER_KW_HOUR = 1.0


@dataclasses.dataclass(frozen=True)
class MarketParameters:
    """Operator-side market knobs, bundled for convenient threading.

    Attributes:
        slot_seconds: Length of one allocation slot.
        price_step: Granularity of the uniform clearing-price scan,
            $/kW/h.
        max_price: Upper end of the price scan, $/kW/h.
        reserve_price: Minimum price the operator will accept, $/kW/h.
            The paper notes a reservation price can recoup energy costs;
            zero by default because tenants pay metered energy anyway.
        under_prediction_factor: Multiplier (0, 1] applied to predicted
            spot capacity.  ``1.0`` means no under-prediction; ``0.85``
            reproduces the paper's "15% under-prediction" (Fig. 17).
    """

    slot_seconds: float = DEFAULT_SLOT_SECONDS
    price_step: float = DEFAULT_PRICE_STEP
    max_price: float = MAX_PRICE_PER_KW_HOUR
    reserve_price: float = 0.0
    under_prediction_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ConfigurationError("slot_seconds must be positive")
        if self.price_step <= 0:
            raise ConfigurationError("price_step must be positive")
        if self.max_price <= self.reserve_price:
            raise ConfigurationError("max_price must exceed reserve_price")
        if not 0 < self.under_prediction_factor <= 1:
            raise ConfigurationError("under_prediction_factor must be in (0, 1]")


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create the library's canonical random generator.

    Args:
        seed: Seed for reproducibility; ``None`` falls back to
            :data:`DEFAULT_SEED` (never to OS entropy — simulations must
            be reproducible by default).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by scenario builders to give each tenant/trace its own stream so
    that adding a tenant does not perturb the randomness of the others.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    return list(rng.spawn(count))
