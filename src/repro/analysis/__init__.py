"""Analysis helpers: empirical CDFs, summary statistics, and plain-text
rendering of the paper's tables and figure series.
"""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import format_kv, format_series, format_table
from repro.analysis.timeseries import (
    DiurnalDecomposition,
    autocorrelation,
    decompose_diurnal,
    dominant_period,
    duty_cycle,
    slot_variation_quantile,
)
from repro.analysis.stats import (
    fraction_true,
    geometric_mean,
    normalize_to,
    relative_change,
    summarize,
)

__all__ = [
    "DiurnalDecomposition",
    "EmpiricalCdf",
    "autocorrelation",
    "decompose_diurnal",
    "dominant_period",
    "duty_cycle",
    "slot_variation_quantile",
    "format_kv",
    "format_series",
    "format_table",
    "fraction_true",
    "geometric_mean",
    "normalize_to",
    "relative_change",
    "summarize",
]
