"""Summary-statistics helpers shared by the experiment runners."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "geometric_mean",
    "normalize_to",
    "summarize",
    "relative_change",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (ratio aggregation).

    Performance *ratios* (e.g. speed-ups over a baseline) aggregate
    multiplicatively; the geometric mean is the right average.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("geometric_mean needs at least one value")
    if np.any(arr <= 0):
        raise ConfigurationError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalize_to(values: Sequence[float], reference: float) -> np.ndarray:
    """Divide a series by a reference value (paper-style normalisation)."""
    if reference == 0:
        raise ConfigurationError("reference must be non-zero")
    return np.asarray(values, dtype=float) / reference


def relative_change(new: float, old: float) -> float:
    """(new - old) / old, guarding the degenerate baseline."""
    if old == 0:
        raise ConfigurationError("old value must be non-zero")
    return (new - old) / old


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / std / min / p50 / p90 / p99 / max of a series."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("summarize needs at least one value")
    if np.any(np.isnan(arr)):
        raise ConfigurationError("summarize requires NaN-free input")
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def fraction_true(flags: Sequence[bool]) -> float:
    """Fraction of truthy entries (duty cycles, violation rates)."""
    arr = np.asarray(flags, dtype=bool)
    if arr.size == 0:
        return math.nan
    return float(arr.mean())
