"""Time-series diagnostics for traces and simulation telemetry.

Trace fidelity is load-bearing in this reproduction: the predictor's
safety case rests on slow slot-to-slot PDU variation, and the tenants'
duty cycles (how often they need spot capacity) anchor the headline
economics.  These helpers quantify those properties so tests and
notebooks can validate a trace — synthetic or replayed — before trusting
simulation results built on it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "autocorrelation",
    "dominant_period",
    "duty_cycle",
    "DiurnalDecomposition",
    "decompose_diurnal",
    "slot_variation_quantile",
]


def _validate_series(series, min_length: int = 2) -> np.ndarray:
    data = np.asarray(series, dtype=float).ravel()
    if data.size < min_length:
        raise ConfigurationError(
            f"series needs at least {min_length} samples, got {data.size}"
        )
    if np.any(~np.isfinite(data)):
        raise ConfigurationError("series must be finite")
    return data


def autocorrelation(series, lag: int) -> float:
    """Pearson autocorrelation of a series at a lag.

    Returns 0 for a constant series (no variance to correlate).
    """
    data = _validate_series(series)
    if not 0 < lag < data.size:
        raise ConfigurationError(
            f"lag must be in (0, {data.size}), got {lag}"
        )
    a = data[:-lag]
    b = data[lag:]
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def dominant_period(series, min_period: int = 2, max_period: int | None = None) -> int:
    """The lag with the strongest positive autocorrelation.

    A cheap period detector: for a diurnal trace sampled at 1-minute
    slots it should return ~1440.

    Args:
        series: The series.
        min_period: Smallest lag considered.
        max_period: Largest lag considered (default: half the series).
    """
    data = _validate_series(series, min_length=8)
    limit = max_period if max_period is not None else data.size // 2
    limit = min(limit, data.size - 1)
    if min_period >= limit:
        raise ConfigurationError("min_period must be below max_period")
    # FFT-based autocorrelation for speed over long lags.
    x = data - data.mean()
    n = 1 << (2 * data.size - 1).bit_length()
    spectrum = np.fft.rfft(x, n)
    acf = np.fft.irfft(spectrum * np.conj(spectrum), n)[: data.size]
    if acf[0] <= 0:
        return min_period
    acf = acf / acf[0]
    # A smooth series has high ACF at every small lag; the *period* is
    # the recurrence after the correlation has first decayed away.  Skip
    # to the first dip below 0.5 (or the first trough), then take the
    # strongest peak beyond it.
    start = min_period
    for lag in range(min_period, limit + 1):
        if acf[lag] < 0.5:
            start = lag
            break
    else:
        # Never decays: no recurrence structure distinguishable from the
        # trend; report the strongest lag as-is.
        window = acf[min_period : limit + 1]
        return int(np.argmax(window)) + min_period
    window = acf[start : limit + 1]
    return int(np.argmax(window)) + start


def duty_cycle(series, threshold: float) -> float:
    """Fraction of samples strictly above a threshold.

    The paper's duty-cycle calibrations ("sprinting tenants need spot
    capacity ~15% of the times") are exactly this statistic on the
    desired-power series against the subscription.
    """
    data = _validate_series(series, min_length=1)
    return float((data > threshold).mean())


@dataclasses.dataclass(frozen=True)
class DiurnalDecomposition:
    """A series split into a daily profile and a residual.

    Attributes:
        profile: Mean value per slot-of-day (length ``slots_per_day``).
        residual: ``series - profile[slot_of_day]``, original length.
        seasonal_strength: 1 - var(residual)/var(series), in [0, 1];
            high values mean the day shape explains most variance.
    """

    profile: np.ndarray
    residual: np.ndarray
    seasonal_strength: float


def decompose_diurnal(series, slots_per_day: int) -> DiurnalDecomposition:
    """Average-day decomposition of a periodic series.

    Args:
        series: The series (need not be a whole number of days).
        slots_per_day: Period length in slots.
    """
    data = _validate_series(series)
    if slots_per_day < 2:
        raise ConfigurationError("slots_per_day must be >= 2")
    if data.size < slots_per_day:
        raise ConfigurationError(
            "series must cover at least one full period"
        )
    indices = np.arange(data.size) % slots_per_day
    profile = np.zeros(slots_per_day)
    for k in range(slots_per_day):
        profile[k] = data[indices == k].mean()
    residual = data - profile[indices]
    total_var = data.var()
    strength = 0.0 if total_var == 0 else max(
        0.0, 1.0 - residual.var() / total_var
    )
    return DiurnalDecomposition(
        profile=profile, residual=residual, seasonal_strength=float(strength)
    )


def slot_variation_quantile(series, quantile: float = 0.99) -> float:
    """Quantile of relative slot-to-slot changes ``|dX| / X``.

    The Fig. 7(a) statistic, usable on any positive series.
    """
    data = _validate_series(series)
    if not 0 <= quantile <= 1:
        raise ConfigurationError("quantile must be in [0, 1]")
    prev = data[:-1]
    if np.any(prev <= 0):
        raise ConfigurationError("series must be positive for relative changes")
    rel = np.abs(np.diff(data)) / prev
    return float(np.quantile(rel, quantile))
