"""Empirical CDF utilities for the paper's distribution figures.

Figures 2(b) and 13 of the paper are CDFs: of tenants' aggregate power,
of market prices, and of UPS-level utilization.  :class:`EmpiricalCdf`
wraps a sample set with the evaluations those figures need, plus the
area-between-CDFs computation that quantifies the paper's "A" / "B" /
"C" regions (utilization gained by oversubscription, emergency mass,
and spot capacity).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["EmpiricalCdf"]


class EmpiricalCdf:
    """An empirical cumulative distribution over a 1-D sample.

    Args:
        samples: Observations; NaNs are rejected.
    """

    def __init__(self, samples) -> None:
        data = np.asarray(samples, dtype=float).ravel()
        if data.size == 0:
            raise ConfigurationError("CDF needs at least one sample")
        if np.any(np.isnan(data)):
            raise ConfigurationError("CDF samples must not contain NaN")
        self._sorted = np.sort(data)

    @property
    def n(self) -> int:
        """Sample count."""
        return self._sorted.size

    @property
    def min(self) -> float:
        """Smallest sample."""
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        """Largest sample."""
        return float(self._sorted[-1])

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self._sorted, x, side="right") / self.n)

    def evaluate_many(self, xs) -> np.ndarray:
        """Vectorised :meth:`evaluate`."""
        xs = np.asarray(xs, dtype=float)
        return np.searchsorted(self._sorted, xs, side="right") / self.n

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p`` (linear interpolation)."""
        if not 0 <= p <= 1:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        return float(np.quantile(self._sorted, p))

    def normalized(self, denominator: float | None = None) -> "EmpiricalCdf":
        """A CDF of samples divided by ``denominator`` (default: max).

        The paper normalises power CDFs to the maximum observed power
        (Fig. 2b) or to the designed capacity (Fig. 13b).
        """
        denom = self.max if denominator is None else denominator
        if denom <= 0:
            raise ConfigurationError("denominator must be positive")
        return EmpiricalCdf(self._sorted / denom)

    def exceedance_fraction(self, threshold: float) -> float:
        """P(X > threshold) — e.g. the emergency mass above capacity."""
        return 1.0 - self.evaluate(threshold)

    def curve(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays for plotting/printing the CDF."""
        if points < 2:
            raise ConfigurationError("points must be >= 2")
        xs = np.linspace(self.min, self.max, points)
        return xs, self.evaluate_many(xs)

    def area_gap_to_ideal(self, capacity: float) -> float:
        """Mean unused capacity fraction below ``capacity``.

        For a power CDF, the area between the measured CDF and the
        "ideal" (always-at-capacity) vertical line equals the average
        headroom — the paper's spot-capacity region "C" in Fig. 2(b),
        expressed as a fraction of capacity.
        """
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        clipped = np.minimum(self._sorted, capacity)
        return float(np.mean(capacity - clipped) / capacity)

    def mean(self) -> float:
        """Sample mean."""
        return float(self._sorted.mean())
