"""Plain-text rendering of experiment outputs.

Every experiment runner returns structured data; these helpers render it
as the rows/series the paper's tables and figures report, so benchmark
runs produce human-readable reproductions on stdout.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "format_table",
    "format_series",
    "format_kv",
    "format_rounded_series",
    "rounded",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Row cells; floats are formatted to 4 significant digits.
        title: Optional heading line.
    """
    if not headers:
        raise ConfigurationError("table needs headers")
    rendered_rows = [[_cell(c) for c in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one or more y-series against a shared x-axis as a table."""
    headers = [x_label, *series.keys()]
    length = len(xs)
    for name, ys in series.items():
        if len(ys) != length:
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points, expected {length}"
            )
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def rounded(values: Sequence[float], kind) -> list:
    """Round one numeric series for paper-style display.

    Args:
        values: Raw series.
        kind: ``"percent"`` shows fractions as percentage points
            (x100, 2 dp — the ``profit +%`` convention), ``"ratio"``
            shows multiplicative factors at 3 dp (the ``perf x``
            convention), and an integer rounds to that many decimal
            places as-is.
    """
    if kind == "percent":
        return [round(100 * v, 2) for v in values]
    if kind == "ratio":
        return [round(v, 3) for v in values]
    if isinstance(kind, int) and not isinstance(kind, bool):
        return [round(v, kind) for v in values]
    raise ConfigurationError(
        f"unknown rounding kind {kind!r} (use 'percent', 'ratio', or an int)"
    )


def format_rounded_series(
    x_label: str,
    xs: Sequence[object],
    columns: Mapping[str, tuple],
    title: str | None = None,
) -> str:
    """Render y-series with the repo's standard display rounding.

    The shared form of the per-figure summary tables: each column is a
    ``(kind, values)`` pair rounded by :func:`rounded` before rendering
    with :func:`format_series`.
    """
    series = {
        label: rounded(values, kind) for label, (kind, values) in columns.items()
    }
    return format_series(x_label, xs, series, title=title)


def format_kv(pairs: Mapping[str, object], title: str | None = None) -> str:
    """Render key/value summary lines."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
