"""SpotDC: a spot power-capacity market for multi-tenant data centers.

A from-scratch reproduction of Islam, Ren, Ren & Wierman, "A Spot
Capacity Market to Increase Power Infrastructure Utilization in
Multi-Tenant Data Centers" (HPCA 2018): the power-delivery substrate,
workload and tenant models, the SpotDC demand-function market, the
paper's baselines, and experiment harnesses regenerating every table
and figure of the evaluation.

Quickstart::

    from repro import testbed_scenario, run_simulation, PowerCappedAllocator

    spotdc = run_simulation(testbed_scenario(seed=1), slots=2000)
    base = run_simulation(
        testbed_scenario(seed=1), slots=2000, allocator=PowerCappedAllocator()
    )
    print(spotdc.operator_profit_increase_vs(base))
"""

from repro.config import MarketParameters, make_rng
from repro.core import (
    AllocationResult,
    BidFrame,
    FullBid,
    LinearBid,
    MarketClearing,
    MaxPerfAllocator,
    PowerCappedAllocator,
    RackBid,
    SpotDCAllocator,
    StepBid,
    TenantBid,
    clear_market,
)
from repro.errors import ReproError
from repro.resilience import (
    DegradationController,
    FaultInjector,
    FaultProfile,
)
from repro.sim import (
    ScenarioBuilder,
    SimulationEngine,
    SimulationResult,
    run_simulation,
    scaled_scenario,
    testbed_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "BidFrame",
    "DegradationController",
    "FaultInjector",
    "FaultProfile",
    "FullBid",
    "LinearBid",
    "MarketClearing",
    "MarketParameters",
    "MaxPerfAllocator",
    "PowerCappedAllocator",
    "RackBid",
    "ReproError",
    "ScenarioBuilder",
    "SimulationEngine",
    "SimulationResult",
    "SpotDCAllocator",
    "StepBid",
    "TenantBid",
    "clear_market",
    "make_rng",
    "run_simulation",
    "scaled_scenario",
    "testbed_scenario",
    "__version__",
]
